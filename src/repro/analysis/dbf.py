"""Demand-bound and arrived-demand-bound functions (Eqs. 4-10).

All functions accept a scalar ``delta`` or a NumPy array of interval
lengths and return the same shape; the heavy sweeps of Section VI rely on
the vectorized path.

Notation (paper Section II/III/IV):

* Eq. (4)  ``DBF_LO(tau, Delta)`` — LO-mode demand bound.
* Eq. (5)  ``w(tau, Delta) = (Delta mod T(HI)) - (D(HI) - D(LO))``.
* Eq. (6)  ``r(tau, Delta, w) = min(w, C(LO)) + C(HI) - C(LO)`` if
  ``w >= 0`` else 0 — the carry-over demand of the job unfinished at the
  mode switch.
* Eq. (7)  ``DBF_HI(tau, Delta) = floor(Delta/T(HI)) * C(HI) + r``.
* Eq. (9)  ``w*(tau, Delta) = (Delta mod T(HI)) - (T(HI) - D(LO))``.
* Eq. (10) ``ADB_HI(tau, Delta) = r(tau, Delta, w*) +
  (floor(Delta/T(HI)) + 1) * C(HI)`` — worst-case demand *arriving* in
  ``[t_switch, t_switch + Delta]`` (Theorem 4, built on Lemma 3).

The extended ``mod`` operator over the reals is
``a mod b = a - floor(a / b) * b`` (paper Section II, "Other notations");
``b = +inf`` yields ``a mod inf = a``.

Floating-point note: quotients are floored with a small relative slack so
that a ``Delta`` generated *at* a breakpoint (``k*T + offset``) lands on
the inclusive side of the jump, matching the right-continuity of the
mathematical definitions.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet

ArrayLike = Union[float, np.ndarray]

#: Relative slack used when flooring quotients of breakpoint-aligned floats.
FLOOR_SLACK = 1e-9


def _floor_div(a: ArrayLike, b: float) -> ArrayLike:
    """``floor(a / b)`` with slack so breakpoint-aligned floats round up.

    ``b = +inf`` gives 0 (consistent with the extended mod operator).
    """
    if math.isinf(b):
        return np.zeros_like(np.asarray(a, dtype=float))
    q = np.asarray(a, dtype=float) / b
    return np.floor(q + FLOOR_SLACK * (1.0 + np.abs(q)))


def extended_mod(a: ArrayLike, b: float) -> ArrayLike:
    """The paper's extended ``mod``: ``a mod b = a - floor(a/b) * b``.

    Defined for real ``a`` and positive real or infinite ``b``.
    """
    a_arr = np.asarray(a, dtype=float)
    if math.isinf(b):
        # Defensive copy only when asarray aliased the caller's array;
        # freshly converted scalars/lists are already private.
        return a_arr.copy() if a_arr is a else a_arr
    return a_arr - _floor_div(a_arr, b) * b


def _as_result(value: np.ndarray, template: ArrayLike) -> ArrayLike:
    if np.isscalar(template) or (isinstance(template, np.ndarray) and template.ndim == 0):
        v = np.asarray(value)
        return float(v) if v.ndim == 0 else float(v.reshape(-1)[0])
    return value


# ----------------------------------------------------------------------
# Per-task demand functions
# ----------------------------------------------------------------------
def dbf_lo(task: MCTask, delta: ArrayLike) -> ArrayLike:
    """Eq. (4): LO-mode demand bound of ``task`` in an interval ``delta``."""
    d = np.asarray(delta, dtype=float)
    jobs = np.maximum(_floor_div(d - task.d_lo, task.t_lo) + 1.0, 0.0)
    return _as_result(jobs * task.c_lo, delta)


def carry_over_window(task: MCTask, delta: ArrayLike) -> ArrayLike:
    """Eq. (5): ``w(tau, Delta)`` — slack window of the carry-over job.

    Negative values mean the carry-over job's HI-mode deadline falls
    outside the interval, so it contributes nothing (Eq. 6).
    """
    d = np.asarray(delta, dtype=float)
    gap = task.d_hi - task.d_lo  # +inf for terminated LO tasks
    if math.isinf(gap):
        return _as_result(np.full_like(d, -math.inf), delta)
    return _as_result(extended_mod(d, task.t_hi) - gap, delta)


def carry_over_demand(task: MCTask, w: ArrayLike, slack: ArrayLike = 0.0) -> ArrayLike:
    """Eq. (6): ``r(tau, Delta, w)`` — demand of the carry-over job.

    The ``w >= 0`` test carries a small scale-relative ``slack`` so that a
    ``Delta`` generated exactly at the jump point (``k*T + offset`` in
    floating point) lands on the inclusive, right-continuous side — the
    same convention as :func:`_floor_div`.  Callers that know ``Delta``
    pass ``_w_slack(task, delta)``.
    """
    w_arr = np.asarray(w, dtype=float)
    demand = np.where(
        w_arr >= -np.asarray(slack, dtype=float),
        np.minimum(np.maximum(w_arr, 0.0), task.c_lo) + (task.c_hi - task.c_lo),
        0.0,
    )
    return _as_result(demand, w)


def _w_slack(task: MCTask, delta: ArrayLike) -> ArrayLike:
    """Rounding slack of the window functions at interval length ``delta``.

    The extended-mod slack grows with the quotient ``delta / T``, so the
    inclusive-side tolerance must scale with both the period and ``delta``.
    """
    period = task.t_hi if math.isfinite(task.t_hi) else 0.0
    return FLOOR_SLACK * (1.0 + period + np.abs(np.asarray(delta, dtype=float)))


def dbf_hi(task: MCTask, delta: ArrayLike) -> ArrayLike:
    """Eq. (7) / Lemma 1: HI-mode demand bound of ``task``.

    Covers HI tasks (carry-over with extra ``C(HI) - C(LO)`` execution),
    degraded LO tasks (``C(HI) == C(LO)``) and terminated LO tasks
    (identically zero).
    """
    d = np.asarray(delta, dtype=float)
    if task.terminated_in_hi:
        return _as_result(np.zeros_like(d), delta)
    body = _floor_div(d, task.t_hi) * task.c_hi
    carry = carry_over_demand(task, carry_over_window(task, d), _w_slack(task, d))
    return _as_result(body + np.asarray(carry, dtype=float), delta)


def arrival_window(task: MCTask, delta: ArrayLike) -> ArrayLike:
    """Eq. (9): ``w*(tau, Delta)`` used by the arrived-demand bound."""
    d = np.asarray(delta, dtype=float)
    if math.isinf(task.t_hi):
        return _as_result(np.full_like(d, -math.inf), delta)
    gap = task.t_hi - task.d_lo
    return _as_result(extended_mod(d, task.t_hi) - gap, delta)


def adb_hi(task: MCTask, delta: ArrayLike, *, drop_terminated_carryover: bool = False) -> ArrayLike:
    """Eq. (10) / Theorem 4: worst-case arrived demand after the switch.

    For a terminated LO task (``T(HI) = +inf``) the formula evaluates to a
    single job's ``C`` — the carry-over job pending at the switch.  With
    ``drop_terminated_carryover=True`` that job is assumed to be killed and
    the task contributes nothing (ablation of DESIGN.md Section 5).
    """
    d = np.asarray(delta, dtype=float)
    if task.terminated_in_hi and drop_terminated_carryover:
        return _as_result(np.zeros_like(d), delta)
    body = (_floor_div(d, task.t_hi) + 1.0) * task.c_hi
    carry = carry_over_demand(task, arrival_window(task, d), _w_slack(task, d))
    return _as_result(body + np.asarray(carry, dtype=float), delta)


# ----------------------------------------------------------------------
# Task-set totals (vectorized over both tasks and deltas)
# ----------------------------------------------------------------------
#: Cap on the broadcast matrix size (tasks x deltas) per chunk.
_CHUNK_CELLS = 4_000_000


def _total(taskset: TaskSet, delta: ArrayLike, per_task) -> ArrayLike:
    d = np.atleast_1d(np.asarray(delta, dtype=float))
    if len(taskset) == 0:
        total = np.zeros_like(d)
        return _as_result(total, delta)
    chunk = max(1, _CHUNK_CELLS // max(1, len(taskset)))
    total = np.zeros_like(d)
    for start in range(0, d.size, chunk):
        block = d[start : start + chunk]
        acc = np.zeros_like(block)
        for task in taskset:
            acc += np.asarray(per_task(task, block), dtype=float)
        total[start : start + chunk] = acc
    return _as_result(total, delta)


def total_dbf_lo(taskset: TaskSet, delta: ArrayLike) -> ArrayLike:
    """System LO-mode demand: ``sum_i DBF_LO(tau_i, Delta)``."""
    return _total(taskset, delta, dbf_lo)


def total_dbf_hi(taskset: TaskSet, delta: ArrayLike) -> ArrayLike:
    """System HI-mode demand: ``sum_i DBF_HI(tau_i, Delta)`` (Theorem 2)."""
    return _total(taskset, delta, dbf_hi)


def total_adb_hi(
    taskset: TaskSet, delta: ArrayLike, *, drop_terminated_carryover: bool = False
) -> ArrayLike:
    """System arrived demand after the switch: ``sum_i ADB_HI`` (Eq. 11)."""
    return _total(
        taskset,
        delta,
        lambda task, block: adb_hi(
            task, block, drop_terminated_carryover=drop_terminated_carryover
        ),
    )


# ----------------------------------------------------------------------
# Asymptotics (used for pruning and infinity detection)
# ----------------------------------------------------------------------
def hi_mode_rate(taskset: TaskSet) -> float:
    """Long-run growth rate of both ``DBF_HI`` and ``ADB_HI``:
    ``sum_i C_i(HI)/T_i(HI)`` (terminated tasks contribute zero)."""
    return sum(t.utilization(Criticality.HI) for t in taskset)


def dbf_hi_excess_bound(taskset: TaskSet) -> float:
    """``B`` with ``DBF_HI(Delta) <= rate * Delta + B`` for all ``Delta``.

    Per task, ``floor(Delta/T) * C + r <= (Delta/T) * C + C``.
    """
    return sum(t.c_hi for t in taskset if not t.terminated_in_hi)


def adb_hi_excess_bound(taskset: TaskSet, *, drop_terminated_carryover: bool = False) -> float:
    """``B*`` with ``ADB_HI(Delta) <= rate * Delta + B*`` for all ``Delta``.

    Per task, ``(floor(Delta/T)+1) * C + r <= (Delta/T) * C + 2C``; a
    terminated LO task contributes one constant job ``C`` (or nothing when
    the carry-over is dropped).
    """
    total = 0.0
    for t in taskset:
        if t.terminated_in_hi:
            if not drop_terminated_carryover:
                total += t.c_hi
        else:
            total += 2.0 * t.c_hi
    return total
