"""Choosing the overrun-preparation factor ``x``.

Section VI fixes "x ... to the minimum to guarantee LO mode
schedulability": shrinking HI tasks' LO-mode deadlines as much as LO-mode
feasibility allows minimizes the HI-mode load carried over at a switch
and hence the required speedup (Lemma 6 is monotone in ``x``).

Two methods are provided:

* ``"density"`` — the classical EDF density argument for implicit
  deadlines: LO mode is feasible if
  ``sum_LO U_i(LO) + sum_HI U_i(LO) / x <= 1``, i.e.

      x_density = sum_HI U_i(LO) / (1 - sum_LO U_i(LO)).

  Sufficient, closed-form, and the convention of the EDF-VD literature.
* ``"exact"`` — bisection on ``x`` against the exact LO-mode demand
  test (:func:`repro.analysis.schedulability.lo_mode_schedulable`);
  returns a (slightly conservative) minimal feasible ``x``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.kernels import MEMO, compile_taskset
from repro.analysis.schedulability import lo_mode_schedulable
from repro.model.task import Criticality, ModelError
from repro.model.taskset import TaskSet
from repro.model.transform import shorten_hi_deadlines
from repro.obs import trace


def density_preparation_factor(taskset: TaskSet) -> Optional[float]:
    """Closed-form minimal ``x`` by the density test (``None`` if infeasible).

    Requires ``sum_LO U_i(LO) < 1``; returns a value clamped into the model
    domain (each HI task still needs ``C(LO) <= x * D(HI)``).
    """
    u_lo_of_lo = taskset.utilization(Criticality.LO, Criticality.LO)
    u_lo_of_hi = taskset.utilization(Criticality.LO, Criticality.HI)
    if u_lo_of_lo + u_lo_of_hi > 1.0 + 1e-12:
        return None
    if not taskset.hi_tasks:
        return 1.0
    headroom = 1.0 - u_lo_of_lo
    if headroom <= 0.0:
        return None
    x = u_lo_of_hi / headroom
    x = max(x, structural_floor(taskset))
    if x > 1.0 + 1e-12:
        return None
    return min(x, 1.0)


def structural_floor(taskset: TaskSet) -> float:
    """Smallest ``x`` the task model itself allows: ``C(LO) <= x * D(HI)``."""
    floors = [t.c_lo / t.d_hi for t in taskset.hi_tasks]
    return max(floors) if floors else 0.0


def exact_preparation_factor(
    taskset: TaskSet, *, tol: float = 1e-4, engine: str = "compiled"
) -> Optional[float]:
    """Minimal ``x`` under the exact LO-mode demand test, via bisection.

    LO-mode feasibility is monotone non-decreasing in ``x`` (longer LO
    deadlines only reduce the demand in every interval), so bisection on
    ``(floor, 1]`` is sound.  Returns ``None`` when even ``x = 1`` fails.
    On the compiled engine each probe rescales one column of a shared
    :class:`~repro.analysis.kernels.CompiledTaskSet` instead of
    rebuilding (and re-validating) a task set.
    """
    if not taskset.hi_tasks:
        return 1.0 if lo_mode_schedulable(taskset, engine=engine) else None

    memo_key = None
    if engine == "compiled":
        base = compile_taskset(taskset)
        # The whole bisection is deterministic in (content, tol): sweeps
        # that re-tune the same base set (shrink ladders, sensitivity
        # grids) skip the repeated probe sequence entirely.
        memo_key = ("exact_x", base.memo_token, tol)
        cached = MEMO.lookup(memo_key)
        if cached is not None:
            return cached

        def feasible(x: float) -> bool:
            return lo_mode_schedulable(base.with_hi_lo_deadline_factor(x))

    else:

        def feasible(x: float) -> bool:
            return lo_mode_schedulable(shorten_hi_deadlines(taskset, x), engine=engine)

    result: Optional[float]
    with trace.span("tuning.bisect", engine=engine, n_tasks=len(taskset)) as sp:

        def probed(x: float) -> bool:
            sp.add("probes")
            return feasible(x)

        hi = 1.0
        if not probed(hi):
            result = None
        else:
            lo = structural_floor(taskset)
            lo = max(lo, 1e-9)
            if probed(lo):
                result = lo
            else:
                while hi - lo > tol * hi:
                    mid = 0.5 * (lo + hi)
                    if probed(mid):
                        hi = mid
                    else:
                        lo = mid
                result = hi
    if memo_key is not None:
        MEMO.store(memo_key, result)
    return result


def min_preparation_factor(
    taskset: TaskSet,
    *,
    method: str = "density",
    tol: float = 1e-4,
    engine: str = "compiled",
) -> Optional[float]:
    """Minimal feasible overrun-preparation factor ``x``.

    Parameters
    ----------
    taskset:
        Base task set (HI tasks with ``D(LO) = D(HI)``; the factor is what
        :func:`repro.model.transform.shorten_hi_deadlines` will apply).
    method:
        ``"density"`` (closed form, Section-VI convention) or ``"exact"``
        (bisection against the demand-bound test).
    tol:
        Relative bisection tolerance for the exact method.
    engine:
        Demand-evaluation engine for the exact method (``"compiled"`` or
        ``"scalar"``, see :mod:`repro.analysis.kernels`); the density
        method is closed-form and ignores it.

    Returns ``None`` when LO mode is infeasible for every ``x <= 1``.
    """
    if method == "density":
        return density_preparation_factor(taskset)
    if method == "exact":
        return exact_preparation_factor(taskset, tol=tol, engine=engine)
    raise ModelError(f"unknown method: {method!r}")
