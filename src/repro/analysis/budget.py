"""Candidate budgets for the pseudo-polynomial breakpoint scans.

The Theorem-2 and Corollary-5 procedures enumerate demand-function
breakpoints in growing windows.  For well-formed inputs the envelope
bounds terminate the scans quickly, but near-degenerate parameters
(speedup barely above the HI-mode demand rate, huge period spreads) can
push the candidate count into the millions.  A :class:`CandidateBudget`
caps the enumeration; exhausting it raises
:class:`AnalysisBudgetExceeded` carrying enough diagnostics to tell
*why* the scan blew up rather than silently hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AnalysisBudgetExceeded(RuntimeError):
    """A breakpoint scan exhausted its candidate budget.

    Attributes
    ----------
    operation:
        The analysis routine that gave up (e.g. ``"resetting_time"``).
    examined:
        Candidates evaluated before the budget ran out.
    budget:
        The configured cap.
    context:
        Routine-specific progress snapshot (scan window, target
        horizon, rates) explaining how far the scan got.
    """

    def __init__(self, operation: str, examined: int, budget: int, context: str = ""):
        self.operation = operation
        self.examined = examined
        self.budget = budget
        self.context = context
        message = (
            f"{operation}: candidate budget exhausted after {examined} "
            f"breakpoints (budget {budget})"
        )
        if context:
            message += f"; {context}"
        message += (
            ". The task set's demand envelope converges too slowly for this "
            "budget — raise max_candidates, or check for a speedup barely "
            "above the HI-mode demand rate / extreme period spreads."
        )
        super().__init__(message)


@dataclass
class CandidateBudget:
    """Mutable counter shared across the windows of one scan.

    ``context`` may be refreshed by the caller before each charge so a
    raised :class:`AnalysisBudgetExceeded` reports current progress.
    """

    limit: int
    operation: str = "analysis"
    examined: int = field(default=0)
    context: str = field(default="")

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError(f"budget limit must be positive, got {self.limit}")

    @property
    def remaining(self) -> int:
        return max(self.limit - self.examined, 0)

    def charge(self, count: int) -> None:
        """Consume ``count`` candidates; raise when the cap is crossed."""
        self.examined += int(count)
        if self.examined > self.limit:
            raise AnalysisBudgetExceeded(
                self.operation, self.examined, self.limit, self.context
            )
