"""Sensitivity analysis: how much overrun can a platform absorb?

The evaluation sweeps the WCET uncertainty ``gamma = C(HI)/C(LO)``
(Figure 5b) and the speedup ``s``; deployment asks the inverse
questions, answered here by monotone bisection on the exact analysis:

* :func:`max_tolerable_gamma` — largest uniform HI/LO WCET ratio the
  platform's speedup cap can still guarantee (optionally within a
  recovery budget);
* :func:`min_speedup_margin` — how far the configured ``s`` sits above
  the Theorem-2 requirement (slack for WCET estimation error);
* :func:`max_tolerable_load_scale` — largest uniform inflation of every
  ``C`` (both levels) the design survives, the classic criticality
  scaling factor.

All three exploit monotonicity: inflating WCETs only increases demand
in every interval, so feasibility is a threshold property and bisection
is sound.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

from repro.analysis.kernels import compile_taskset
from repro.analysis.resetting import resetting_time
from repro.analysis.schedulability import lo_mode_schedulable
from repro.analysis.speedup import min_speedup
from repro.model.task import MCTask
from repro.model.taskset import TaskSet
from repro.model.transform import scale_wcet_uncertainty


def _gamma_feasible(
    base: TaskSet, gamma: float, s: float, reset_budget: float, engine: str
) -> bool:
    """Does the design hold with every HI task's C(HI) = gamma * C(LO)?

    The compiled engine rescales one column of a shared snapshot per
    probe; repeated probes (bisection endpoints, the shared ``gamma = 1``
    check) additionally hit the fingerprint memo inside
    :func:`min_speedup` / :func:`resetting_time`.
    """
    try:
        if engine == "compiled":
            scaled = compile_taskset(base).with_wcet_uncertainty(gamma)
        else:
            scaled = scale_wcet_uncertainty(base, gamma)
    except Exception:
        return False  # C(HI) would exceed some deadline: structurally out
    if min_speedup(scaled, engine=engine).s_min > s * (1.0 + 1e-9):
        return False
    if math.isfinite(reset_budget):
        if resetting_time(scaled, s, engine=engine).delta_r > reset_budget * (1.0 + 1e-9):
            return False
    return True


def max_tolerable_gamma(
    taskset: TaskSet,
    s: float,
    *,
    reset_budget: float = math.inf,
    gamma_cap: float = 20.0,
    tol: float = 1e-3,
    engine: str = "compiled",
) -> Optional[float]:
    """Largest uniform ``gamma`` schedulable at speedup ``s``.

    ``taskset`` provides the LO-level WCETs and the (prepared/degraded)
    deadlines; gamma rescales every HI task's ``C(HI)``.  Returns
    ``None`` when even ``gamma = 1`` (no overrun band) fails.
    """
    if s <= 0.0:
        raise ValueError(f"speedup must be positive, got {s}")
    if not _gamma_feasible(taskset, 1.0, s, reset_budget, engine):
        return None
    lo, hi = 1.0, gamma_cap
    if _gamma_feasible(taskset, hi, s, reset_budget, engine):
        return hi
    while hi - lo > tol * hi:
        mid = 0.5 * (lo + hi)
        if _gamma_feasible(taskset, mid, s, reset_budget, engine):
            lo = mid
        else:
            hi = mid
    return lo


def min_speedup_margin(taskset: TaskSet, s: float, *, engine: str = "compiled") -> float:
    """Slack between the configured speedup and the exact requirement.

    Positive values are headroom; negative means the design is broken.
    ``-inf`` when the requirement itself is infinite.
    """
    requirement = min_speedup(taskset, engine=engine).s_min
    if math.isinf(requirement):
        return -math.inf
    return s - requirement


def _load_feasible(base: TaskSet, factor: float, s: float, engine: str) -> bool:
    def inflate(task: MCTask) -> MCTask:
        c_lo = task.c_lo * factor
        c_hi = task.c_hi * factor
        if c_lo > task.d_lo or c_hi > min(task.d_hi, task.t_hi):
            return None
        return replace(task, c_lo=c_lo, c_hi=c_hi)

    inflated = [inflate(t) for t in base]
    if any(t is None for t in inflated):
        return False
    scaled = TaskSet(inflated, name=f"{base.name}|x{factor:g}")
    if not lo_mode_schedulable(scaled, engine=engine):
        return False
    return min_speedup(scaled, engine=engine).s_min <= s * (1.0 + 1e-9)


def max_tolerable_load_scale(
    taskset: TaskSet,
    s: float,
    *,
    cap: float = 10.0,
    tol: float = 1e-3,
    engine: str = "compiled",
) -> Optional[float]:
    """Largest uniform WCET inflation (both levels) the design survives.

    The criticality-scaling-factor analogue for this scheme: LO-mode
    feasibility at nominal speed *and* the Theorem-2 requirement within
    ``s`` must both hold after inflating every ``C`` by the factor.
    Returns ``None`` when the un-inflated design already fails.
    """
    if s <= 0.0:
        raise ValueError(f"speedup must be positive, got {s}")
    if not _load_feasible(taskset, 1.0, s, engine):
        return None
    lo, hi = 1.0, cap
    if _load_feasible(taskset, hi, s, engine):
        return hi
    while hi - lo > tol * hi:
        mid = 0.5 * (lo + hi)
        if _load_feasible(taskset, mid, s, engine):
            lo = mid
        else:
            hi = mid
    return lo
