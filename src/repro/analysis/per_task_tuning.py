"""Per-task LO-mode deadline tuning (extension beyond the uniform ``x``).

Section V's common factor ``x`` shrinks every HI task's LO deadline by
the same ratio; Ekberg & Yi's tuning (the machinery behind reference
[6]) shapes each deadline individually.  This module implements a
greedy variant:

1. start from the uniform minimal-``x`` configuration (LO-feasible);
2. repeatedly pick the HI task whose carry-over dominates the critical
   interval of Theorem 2 and shrink *its* LO deadline by a step, as
   long as LO mode stays feasible and ``s_min`` improves;
3. stop at a fixed point or iteration budget.

The result never needs more speedup than the uniform configuration —
each accepted move strictly decreases ``s_min`` — and often needs
less; ``bench_ablation.py`` quantifies the gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.dbf import carry_over_demand, carry_over_window, _w_slack
from repro.analysis.kernels import adopt_compiled, compile_taskset
from repro.analysis.schedulability import lo_mode_schedulable
from repro.analysis.speedup import min_speedup
from repro.analysis.tuning import min_preparation_factor
from repro.model.task import MCTask
from repro.model.taskset import TaskSet
from repro.model.transform import shorten_hi_deadlines
from repro.obs import trace


@dataclass
class TuningResult:
    """Outcome of the greedy per-task tuning.

    Attributes
    ----------
    taskset:
        The tuned task set (individual ``D(LO)`` values).
    s_min:
        Theorem-2 requirement of the tuned set.
    uniform_s_min:
        Requirement of the uniform-``x`` starting point, for comparison.
    history:
        ``s_min`` after each accepted move (strictly decreasing).
    moves:
        ``(task_name, new_d_lo)`` per accepted move.
    """

    taskset: TaskSet
    s_min: float
    uniform_s_min: float
    history: List[float] = field(default_factory=list)
    moves: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Speedup saved relative to the uniform configuration (>= 0)."""
        if math.isinf(self.uniform_s_min):
            return math.inf if math.isfinite(self.s_min) else 0.0
        return self.uniform_s_min - self.s_min


def _dominant_carryover_task(
    taskset: TaskSet, delta: float, *, engine: str = "scalar"
) -> Optional[MCTask]:
    """HI task with the largest carry-over demand at interval ``delta``."""
    if engine == "compiled":
        position, _ = compile_taskset(taskset).dominant_carryover(delta)
        return None if position < 0 else taskset.hi_tasks[position]
    best, best_r = None, 0.0
    for task in taskset.hi_tasks:
        w = carry_over_window(task, delta)
        r = float(carry_over_demand(task, w, _w_slack(task, delta)))
        if r > best_r:
            best, best_r = task, r
    return best


def tune_per_task_deadlines(
    taskset: TaskSet,
    *,
    shrink: float = 0.85,
    max_moves: int = 60,
    min_relative_gain: float = 1e-4,
    x_method: str = "exact",
    engine: str = "compiled",
) -> Optional[TuningResult]:
    """Greedy per-task deadline shaping starting from minimal uniform x.

    Parameters
    ----------
    taskset:
        Base set; HI tasks may carry any LO deadlines (typically
        ``D(LO) = D(HI)``); LO tasks keep their configured HI-mode
        service.
    shrink:
        Multiplicative step applied to the chosen task's ``D(LO)``.
    max_moves:
        Budget on accepted+rejected move attempts.
    min_relative_gain:
        Moves improving ``s_min`` by less than this fraction stop the
        search.
    x_method:
        How the uniform starting factor is chosen (see
        :func:`repro.analysis.tuning.min_preparation_factor`):
        ``"exact"`` bisects the demand test down to the smallest feasible
        ``x``; ``"density"`` uses the closed-form density bound (the
        EDF-VD-literature convention), which starts the greedy search
        from a larger, less aggressive ``x``.
    engine:
        Demand-evaluation engine (``"compiled"`` or ``"scalar"``).  The
        compiled engine threads one struct-of-arrays snapshot through the
        whole greedy loop: every candidate move rescales a single
        ``D(LO)`` column of the previous snapshot, and repeated
        feasibility/speedup probes hit the fingerprint memo.

    Returns ``None`` when LO mode is infeasible for every uniform ``x``.
    """
    if not 0.0 < shrink < 1.0:
        raise ValueError(f"shrink must be in (0, 1), got {shrink}")
    with trace.span("per_task.tune", engine=engine, n_tasks=len(taskset)) as sp:
        result = _tune_per_task_deadlines(
            taskset,
            shrink=shrink,
            max_moves=max_moves,
            min_relative_gain=min_relative_gain,
            x_method=x_method,
            engine=engine,
        )
        if result is not None:
            sp.add("moves", len(result.moves))
            sp.add("probes", len(result.history))
    return result


def _tune_per_task_deadlines(
    taskset: TaskSet,
    *,
    shrink: float,
    max_moves: int,
    min_relative_gain: float,
    x_method: str,
    engine: str,
) -> Optional[TuningResult]:
    compiled = engine == "compiled"
    x = min_preparation_factor(taskset, method=x_method, engine=engine)
    if x is None:
        return None
    if taskset.hi_tasks and x >= 1.0:
        return None
    if taskset.hi_tasks:
        x_eff = min(x, 1.0 - 1e-9)
        current = shorten_hi_deadlines(taskset, x_eff)
        if compiled:
            # The derived snapshot applies the same clamped rescale, so its
            # content (and fingerprint) matches `current` exactly.
            adopt_compiled(
                current, compile_taskset(taskset).with_hi_lo_deadline_factor(x_eff)
            )
    else:
        current = taskset
    uniform = min_speedup(current, engine=engine)
    result = TuningResult(
        taskset=current,
        s_min=uniform.s_min,
        uniform_s_min=uniform.s_min,
        history=[uniform.s_min],
    )
    if not math.isfinite(uniform.s_min):
        return result

    best = uniform
    for _ in range(max_moves):
        if best.critical_delta is None:
            break
        target = _dominant_carryover_task(
            result.taskset, best.critical_delta, engine=engine
        )
        if target is None:
            break
        new_d_lo = max(target.c_lo, shrink * target.d_lo)
        if new_d_lo >= target.d_lo * (1.0 - 1e-12):
            break  # already clamped at C(LO)
        candidate_set = result.taskset.map(
            lambda t: t.with_lo_deadline(new_d_lo) if t.name == target.name else t
        )
        if compiled:
            adopt_compiled(
                candidate_set,
                compile_taskset(result.taskset).with_lo_deadline(
                    target.name, new_d_lo
                ),
            )
        if not lo_mode_schedulable(candidate_set, engine=engine):
            break
        candidate = min_speedup(candidate_set, engine=engine)
        gain = best.s_min - candidate.s_min
        if gain <= min_relative_gain * max(best.s_min, 1e-9):
            break
        result.taskset = candidate_set
        result.s_min = candidate.s_min
        result.history.append(candidate.s_min)
        result.moves.append((target.name, new_d_lo))
        best = candidate
    return result
