"""Candidate-point enumeration for the piecewise-linear demand functions.

Both ``DBF_HI`` (Eq. 7) and ``ADB_HI`` (Eq. 10) are piecewise-linear and
right-continuous in ``Delta``, with all discontinuities and slope changes
at per-task *breakpoints*:

* ``DBF_HI`` of task ``tau``: offsets ``{D(HI)-D(LO),
  D(HI)-D(LO)+C(LO)}`` and the period boundary, repeated every ``T(HI)``.
* ``ADB_HI`` of task ``tau``: offsets ``{T(HI)-D(LO),
  T(HI)-D(LO)+C(LO)}`` and the period boundary, repeated every ``T(HI)``.

Between consecutive breakpoints of the *system* (union over tasks) the
total demand is linear, so extrema of ``demand/Delta`` and first
crossings of ``demand - s*Delta`` can be located by inspecting
breakpoints plus one probe per segment.  This yields the
pseudo-polynomial procedures the paper alludes to ("Computation
efficiency" paragraphs of Sections III and IV).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.budget import CandidateBudget
from repro.model.task import MCTask
from repro.model.taskset import TaskSet


def dbf_hi_offsets(task: MCTask) -> List[float]:
    """In-period breakpoint offsets of ``DBF_HI`` for ``task``.

    Returns an empty list for tasks terminated in HI mode (their demand is
    identically zero).
    """
    if task.terminated_in_hi or math.isinf(task.t_hi):
        return []
    gap = task.d_hi - task.d_lo
    offsets = {gap, gap + task.c_lo, task.t_hi}
    return sorted(o for o in offsets if 0.0 <= o <= task.t_hi)


def adb_hi_offsets(task: MCTask) -> List[float]:
    """In-period breakpoint offsets of ``ADB_HI`` for ``task``."""
    if math.isinf(task.t_hi):
        return []
    gap = task.t_hi - task.d_lo
    offsets = {0.0, gap, gap + task.c_lo, task.t_hi}
    return sorted(o for o in offsets if 0.0 <= o <= task.t_hi)


def _task_points(period: float, offsets: Sequence[float], lo: float, hi: float) -> np.ndarray:
    """All points ``k * period + offset`` inside ``(lo, hi]``."""
    if not offsets or math.isinf(period):
        return np.empty(0)
    pieces = []
    for offset in offsets:
        k_min = math.floor((lo - offset) / period) if period > 0 else 0
        k_min = max(0, k_min)
        k_max = math.floor((hi - offset) / period + 1e-12)
        if k_max < k_min:
            continue
        ks = np.arange(k_min, k_max + 1, dtype=float)
        pts = ks * period + offset
        pieces.append(pts)
    if not pieces:
        return np.empty(0)
    points = np.concatenate(pieces)
    return points[(points > lo) & (points <= hi)]


def _union_points(pieces) -> np.ndarray:
    """Sorted union of per-task point arrays (empty pieces dropped)."""
    pieces = [p for p in pieces if p.size]
    if not pieces:
        return np.empty(0)
    return np.unique(np.concatenate(pieces))


def breakpoints_in(
    taskset: TaskSet,
    lo: float,
    hi: float,
    *,
    kind: str = "dbf",
    budget: Optional[CandidateBudget] = None,
) -> np.ndarray:
    """Sorted, de-duplicated system breakpoints in the window ``(lo, hi]``.

    ``kind`` selects the demand function: ``"dbf"`` for ``DBF_HI`` or
    ``"adb"`` for ``ADB_HI``.  When a ``budget`` is given, the returned
    candidates are charged against it (raising
    :class:`~repro.analysis.budget.AnalysisBudgetExceeded` when the scan
    has materialised more points than the budget allows).
    """
    if kind not in ("dbf", "adb"):
        raise ValueError(f"unknown kind: {kind!r}")
    offsets_of = dbf_hi_offsets if kind == "dbf" else adb_hi_offsets
    points = _union_points(
        _task_points(task.t_hi, offsets_of(task), lo, hi)
        for task in taskset
        if not math.isinf(task.t_hi)
    )
    if not points.size:
        return points
    # Merge floating-point near-duplicates (within relative 1e-12) so that
    # downstream segment logic never sees zero-length segments.
    if points.size > 1:
        keep = np.empty(points.size, dtype=bool)
        keep[0] = True
        keep[1:] = np.diff(points) > 1e-12 * np.maximum(1.0, points[1:])
        points = points[keep]
    if budget is not None:
        budget.charge(points.size)
    return points


def dbf_lo_breakpoints_in(taskset: TaskSet, lo: float, hi: float) -> np.ndarray:
    """Breakpoints of the system ``DBF_LO`` in ``(lo, hi]`` (deadlines)."""
    return _union_points(
        _task_points(task.t_lo, [task.d_lo], lo, hi) for task in taskset
    )


def candidate_density(taskset: TaskSet, kind: str = "dbf") -> float:
    """Expected breakpoints per unit of Delta (for window sizing).

    Used to clamp scan windows so a single window never materialises more
    than a bounded number of candidate points, regardless of how large
    the pruning horizon is relative to the periods.
    """
    offsets_of = dbf_hi_offsets if kind == "dbf" else adb_hi_offsets
    density = 0.0
    for task in taskset:
        if math.isinf(task.t_hi):
            continue
        count = len(offsets_of(task))
        if count:
            density += count / task.t_hi
    return density


def clamp_window(
    taskset: TaskSet, start: float, desired_end: float, *,
    kind: str = "dbf", max_points: int = 200_000,
) -> float:
    """Largest window end <= desired_end keeping candidates <= max_points."""
    density = candidate_density(taskset, kind)
    if density <= 0.0:
        return desired_end
    limit = start + max_points / density
    return min(desired_end, max(limit, start * 1.0 + 1e-12))


def max_finite_period(taskset: TaskSet) -> float:
    """Largest finite HI-mode period; 0.0 when every task is terminated."""
    periods = [t.t_hi for t in taskset if not math.isinf(t.t_hi)]
    return max(periods) if periods else 0.0


def initial_window(taskset: TaskSet) -> float:
    """A reasonable first search window: two largest HI-mode periods."""
    period = max_finite_period(taskset)
    if period <= 0.0:
        return 1.0
    return 2.0 * period


def windows(start: float, grow: float = 2.0) -> Iterable[float]:
    """Yield geometrically growing window end points: start, start*grow, ..."""
    end = start
    while True:
        yield end
        end *= grow
