"""One-shot design reports: analysis + validation + sensitivity as text.

``build_report`` runs the complete design pipeline on a task set and
returns a markdown-ish document a reviewer can read end to end:

1. the task table and utilization summary;
2. dual-mode schedulability (LO test, Theorem 2, Corollary 5);
3. closed-form comparison where the Section-V special case applies;
4. sensitivity margins (speedup headroom, max tolerable gamma);
5. simulator validation under the adversarial workload, with a Gantt
   snippet of the first overrun episode.

Exposed on the CLI as ``repro-mc analyze --taskset ... --report``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.resetting import resetting_time
from repro.analysis.schedulability import system_schedulable
from repro.analysis.sensitivity import max_tolerable_gamma, min_speedup_margin
from repro.model.taskset import TaskSet
from repro.sim.metrics import summarize
from repro.sim.scheduler import SimConfig, simulate
from repro.sim.workload import OverrunModel, SynchronousWorstCaseSource


def build_report(
    taskset: TaskSet,
    s: float = 2.0,
    *,
    reset_budget: Optional[float] = None,
    simulate_horizon: Optional[float] = None,
    gantt_width: int = 72,
) -> str:
    """Produce the full design report for ``taskset`` at speedup ``s``."""
    lines = [f"# Design report: {taskset.name}", ""]
    lines.append(taskset.table())
    lines.append("")
    lines.append(
        f"Utilizations: U_LO(system) = {taskset.u_lo_system:.3f}, "
        f"U_HI(system) = {taskset.u_hi_system:.3f}, "
        f"max gamma = {taskset.max_gamma:.3g}"
    )
    lines.append("")

    # ------------------------------------------------------------------
    # Dual-mode analysis
    # ------------------------------------------------------------------
    lines.append("## Offline analysis")
    report = system_schedulable(taskset, s=s)
    lines.append(f"* LO mode feasible at nominal speed: **{report.lo_ok}**")
    lines.append(f"* Theorem 2 minimum speedup: **{report.s_min.s_min:.6g}**")
    lines.append(f"* HI mode feasible at s = {s:g}: **{report.hi_ok}**")
    if report.resetting is not None:
        lines.append(
            f"* Corollary 5 resetting time at s = {s:g}: "
            f"**{report.resetting.delta_r:.6g}**"
        )
        if reset_budget is not None:
            lines.append(
                f"* Within recovery budget {reset_budget:g}: "
                f"**{report.within_reset_budget(reset_budget)}**"
            )
    lines.append("")

    # ------------------------------------------------------------------
    # Sensitivity
    # ------------------------------------------------------------------
    lines.append("## Sensitivity")
    margin = min_speedup_margin(taskset, s)
    lines.append(f"* Speedup headroom at s = {s:g}: **{margin:.6g}**")
    if report.schedulable:
        gamma = max_tolerable_gamma(
            taskset, s,
            reset_budget=reset_budget if reset_budget is not None else math.inf,
        )
        if gamma is not None:
            lines.append(f"* Max tolerable WCET ratio gamma: **{gamma:.4g}**")
    lines.append("")

    # ------------------------------------------------------------------
    # Simulation validation
    # ------------------------------------------------------------------
    if report.schedulable:
        lines.append("## Simulated worst case")
        horizon = simulate_horizon
        if horizon is None:
            horizon = 20.0 * max(t.t_lo for t in taskset)
        source = SynchronousWorstCaseSource(
            OverrunModel(first_job_overruns=True, probability=1.0)
        )
        result = simulate(taskset, SimConfig(speedup=s, horizon=horizon), source)
        lines.append("```")
        lines.append(summarize(result, taskset))
        lines.append("```")
        if result.episodes:
            first = result.episodes[0]
            end = first.end if first.end is not None else horizon
            window = min(end + 2.0 * (end - first.start + 1.0), horizon)
            lines.append("")
            lines.append(
                f"First overrun episode: t = {first.start:g} .. {end:g} "
                f"(bound {report.resetting.delta_r:.4g})"
            )
            lines.append("```")
            lines.append(result.trace.gantt(width=gantt_width, end=window))
            lines.append("```")
        verdict = (
            "PASS" if result.miss_count == 0
            and result.max_episode_length <= report.resetting.delta_r + 1e-9
            else "FAIL"
        )
        lines.append("")
        lines.append(f"Validation verdict: **{verdict}**")
    else:
        lines.append("## Simulated worst case")
        lines.append("Skipped: the configuration is not schedulable at the "
                      "requested speedup.")
    return "\n".join(lines)
