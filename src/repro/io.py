"""Serialization: task sets to/from JSON, experiment results to CSV.

A downstream user needs to feed their own workloads in and get raw
numbers out; this module provides stable, versioned formats:

* task sets — JSON with one object per task carrying the full
  ``{T, D, C}`` triple per mode (``null`` encodes the terminated-task
  infinities);
* experiment series — plain CSV with a header row, written without any
  third-party dependency.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet

if TYPE_CHECKING:  # import-for-typing only: the runtime import would
    # close the io -> pipeline -> analysis -> ... cycle
    from repro.pipeline.request import AnalysisReport

#: Current task-set document schema.  Version 2 renamed the version
#: field to ``schema_version``; version-1 documents (``"version": 1``)
#: are still read.
FORMAT_VERSION = 2

#: Schema versions the loader accepts.
SUPPORTED_VERSIONS = (1, 2)

#: Analysis-report envelope schema (separate lineage from task sets).
REPORT_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _encode_value(value: float):
    return None if math.isinf(value) else value


def _decode_value(value) -> float:
    return math.inf if value is None else float(value)


def task_to_dict(task: MCTask) -> Dict:
    """One task as a JSON-ready dictionary."""
    return {
        "name": task.name,
        "criticality": task.crit.value,
        "c_lo": task.c_lo,
        "c_hi": task.c_hi,
        "d_lo": task.d_lo,
        "d_hi": _encode_value(task.d_hi),
        "t_lo": task.t_lo,
        "t_hi": _encode_value(task.t_hi),
    }


def task_from_dict(data: Dict) -> MCTask:
    """Inverse of :func:`task_to_dict`; validates via the model."""
    try:
        crit = Criticality(data["criticality"])
        return MCTask(
            name=str(data["name"]),
            crit=crit,
            c_lo=float(data["c_lo"]),
            c_hi=float(data["c_hi"]),
            d_lo=float(data["d_lo"]),
            d_hi=_decode_value(data["d_hi"]),
            t_lo=float(data["t_lo"]),
            t_hi=_decode_value(data["t_hi"]),
        )
    except KeyError as missing:
        raise ValueError(f"task record missing field {missing}") from None


def _document_version(payload: Dict) -> int:
    """Schema version of a document: ``schema_version``, then the legacy
    version-1 field name ``version``."""
    if "schema_version" in payload:
        return int(payload["schema_version"])
    return int(payload.get("version", 0))


def taskset_to_json(taskset: TaskSet, *, indent: int = 2) -> str:
    """Serialize a task set (with explicit schema version and name)."""
    payload = {
        "format": "repro-mc-taskset",
        "schema_version": FORMAT_VERSION,
        "name": taskset.name,
        "tasks": [task_to_dict(t) for t in taskset],
    }
    return json.dumps(payload, indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    """Parse a task set serialized by :func:`taskset_to_json`.

    Accepts every version in :data:`SUPPORTED_VERSIONS` (version-1
    documents carry the version under the legacy ``version`` key) and
    rejects anything else — unknown future schemas fail loudly instead
    of being misread.
    """
    payload = json.loads(text)
    if payload.get("format") != "repro-mc-taskset":
        raise ValueError("not a repro-mc task-set document")
    version = _document_version(payload)
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported task-set schema version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    tasks = [task_from_dict(entry) for entry in payload.get("tasks", [])]
    return TaskSet(tasks, name=payload.get("name", "taskset"))


def save_taskset(taskset: TaskSet, path: PathLike) -> None:
    """Write a task set to a JSON file."""
    Path(path).write_text(taskset_to_json(taskset) + "\n")


def load_taskset(path: PathLike) -> TaskSet:
    """Read a task set from a JSON file."""
    return taskset_from_json(Path(path).read_text())


def report_to_json(report: "AnalysisReport", *, indent: int = 2) -> str:
    """Serialize an :class:`~repro.pipeline.request.AnalysisReport`."""
    payload = {
        "format": "repro-mc-analysis-report",
        "schema_version": REPORT_FORMAT_VERSION,
        "report": report.to_dict(),
    }
    return json.dumps(payload, indent=indent)


def report_from_json(text: str) -> "AnalysisReport":
    """Parse an analysis report serialized by :func:`report_to_json`."""
    # Local import: repro.pipeline depends on the analysis layer, which
    # must stay importable without this module forming a cycle.
    from repro.pipeline.request import AnalysisReport

    payload = json.loads(text)
    if payload.get("format") != "repro-mc-analysis-report":
        raise ValueError("not a repro-mc analysis-report document")
    version = _document_version(payload)
    if version != REPORT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported analysis-report schema version {version} "
            f"(supported: {REPORT_FORMAT_VERSION})"
        )
    return AnalysisReport.from_dict(payload["report"])


def save_report(report: "AnalysisReport", path: PathLike) -> None:
    """Write an analysis report to a JSON file."""
    Path(path).write_text(report_to_json(report) + "\n")


def load_report(path: PathLike) -> "AnalysisReport":
    """Read an analysis report from a JSON file."""
    return report_from_json(Path(path).read_text())


def write_series_csv(
    path: PathLike,
    x_label: str,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
) -> None:
    """Write an experiment series (one x column, named y columns).

    Infinite values are written as the string ``inf`` (readable by
    ``float``); lengths must agree.
    """
    for name, values in columns.items():  # repro-lint: ignore[RL009] validation only; order never reaches the file
        if len(values) != len(xs):
            raise ValueError(f"column {name!r} has {len(values)} rows, expected {len(xs)}")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, *columns.keys()])  # repro-lint: ignore[RL009] column order is the caller's explicit series order, built deterministically
        for i, x in enumerate(xs):
            writer.writerow([x, *(values[i] for values in columns.values())])  # repro-lint: ignore[RL009] column order is the caller's explicit series order, built deterministically


def write_records_csv(path: PathLike, records: Sequence[Dict]) -> None:
    """Write heterogeneous result records (e.g. resilience verdicts).

    The header is the union of keys over all records, in first-seen
    order; missing fields are left empty.  Values are written with
    ``str`` (so ``inf``, booleans and enum names round-trip as text).
    """
    if not records:
        raise ValueError("no records to write")
    fields: List[str] = []
    for record in records:
        for key in record:
            if key not in fields:
                fields.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow({key: _render_cell(record.get(key)) for key in fields})


def _render_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def read_records_csv(path: PathLike) -> List[Dict[str, str]]:
    """Inverse of :func:`write_records_csv` (values come back as strings)."""
    with open(path, newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def read_series_csv(path: PathLike):
    """Inverse of :func:`write_series_csv`: ``(x_label, xs, columns)``."""
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ValueError(f"{path}: empty CSV")
    header, *body = rows
    x_label, *names = header
    xs: List[float] = []
    columns: Dict[str, List[float]] = {name: [] for name in names}
    for row in body:
        xs.append(float(row[0]))
        for name, cell in zip(names, row[1:]):
            columns[name].append(float(cell))
    return x_label, xs, columns
