"""Workload generation: synthetic task sets (Section VI-B/C) and the FMS.

* :mod:`repro.generator.taskgen` — the random task-set generator of
  Baruah et al. [4] as parameterized by the captions of Figures 6 and 7.
* :mod:`repro.generator.fms` — a representative flight-management-system
  workload matching the structural description of Section VI-A.
"""

from repro.generator.taskgen import (
    GeneratorConfig,
    generate_taskset,
    generate_taskset_with_targets,
    random_task,
)
from repro.generator.fms import fms_taskset

__all__ = [
    "GeneratorConfig",
    "generate_taskset",
    "generate_taskset_with_targets",
    "random_task",
    "fms_taskset",
]
