"""Random task-set generator of Baruah et al. [4], Section VI parameters.

The generator "starts with an empty task set and continuously adds new
random tasks to this set until certain system utilization U_bound is
met".  Per-task parameters follow the caption of Figure 6:

* minimum inter-arrival times drawn uniformly from [2 ms, 2 s]
  (log-uniform draws available via the config);
* LO-criticality utilization ``C(LO)/T(LO)`` uniform in [0.01, 0.2];
* WCET uncertainty ``gamma = C(HI)/C(LO)`` uniform in [1, 3] for HI
  tasks (Figure 7 uses gamma = 10);
* criticality HI with probability 0.5;
* implicit deadlines (``D = T`` on every level; overrun preparation and
  degradation are applied afterwards via the Section-V transforms).

The dimensioning metric ``U_bound`` defaults to the average of the
LO-mode and HI-mode system utilizations of the base set (before
preparation/degradation);
see :class:`GeneratorConfig` for alternatives.  Overshoot handling is
configurable; the default rescales the final task's utilization so the
target is hit exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.model.task import Criticality, MCTask, ModelError
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic generator (defaults: Figure 6 caption).

    Attributes
    ----------
    period_range:
        Bounds (inclusive) for minimum inter-arrival times, in ms.
    u_lo_range:
        Bounds for the per-task LO-criticality utilization.
    gamma_range:
        Bounds for the HI/LO WCET ratio of HI tasks.  A degenerate range
        ``(g, g)`` pins gamma (Figure 7 uses ``(10, 10)``).
    p_hi:
        Probability that a new task is HI-criticality.
    log_uniform_periods:
        Draw periods log-uniformly instead of uniformly (default False,
        the plain reading of the Figure-6 caption).
    overshoot:
        What to do when the last task pushes past the target utilization:
        ``"scale"`` (shrink its utilization to land exactly on target),
        ``"drop"`` (discard it and stop below target) or ``"resample"``
        (retry the last task up to 100 times with a smaller utilization
        draw, else scale).
    metric:
        Dimensioning metric for ``U_bound``.  ``"avg"`` (default)
        averages the LO-mode and HI-mode *system* utilizations — the
        only convention consistent with the paper's "speedup < 1
        whenever U_bound <= 0.5" observation (see EXPERIMENTS.md).
        ``"avg_crit"`` is ``(U^LO_LO + U^HI_HI) / 2`` (EDF-VD
        literature); ``"max"`` takes the larger mode; ``"lo"``/``"hi"``
        one mode only.
    cap_each_mode:
        With the ``"avg"`` metric, optionally keep each individual
        mode's utilization at or below this cap (1.0 keeps both modes
        individually unit-speed feasible).  The default ``inf`` matches
        the paper: HI-mode overload beyond 1 is exactly what the
        speedup absorbs, and LO-infeasible draws are simply reported as
        unschedulable.
    """

    period_range: Tuple[float, float] = (2.0, 2000.0)
    u_lo_range: Tuple[float, float] = (0.01, 0.2)
    gamma_range: Tuple[float, float] = (1.0, 3.0)
    p_hi: float = 0.5
    log_uniform_periods: bool = False
    overshoot: str = "scale"
    metric: str = "avg"
    cap_each_mode: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.period_range[0] <= self.period_range[1]:
            raise ModelError(f"bad period range {self.period_range}")
        if not 0.0 < self.u_lo_range[0] <= self.u_lo_range[1] <= 1.0:
            raise ModelError(f"bad utilization range {self.u_lo_range}")
        if not 1.0 <= self.gamma_range[0] <= self.gamma_range[1]:
            raise ModelError(f"bad gamma range {self.gamma_range}")
        if not 0.0 <= self.p_hi <= 1.0:
            raise ModelError(f"bad HI probability {self.p_hi}")
        if self.overshoot not in ("scale", "drop", "resample"):
            raise ModelError(f"unknown overshoot policy {self.overshoot!r}")
        if self.metric not in ("avg_crit", "avg", "max", "lo", "hi"):
            raise ModelError(f"unknown metric {self.metric!r}")
        if self.cap_each_mode <= 0.0:
            raise ModelError(f"cap_each_mode must be positive, got {self.cap_each_mode}")


#: The Figure 7 configuration: pinned gamma = 10, otherwise Figure 6.
FIG7_CONFIG = GeneratorConfig(gamma_range=(10.0, 10.0))


def _draw_period(rng: np.random.Generator, config: GeneratorConfig) -> float:
    lo, hi = config.period_range
    if config.log_uniform_periods:
        return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
    return float(rng.uniform(lo, hi))


def random_task(
    rng: np.random.Generator,
    config: GeneratorConfig = GeneratorConfig(),
    *,
    name: str = "task",
    crit: Optional[Criticality] = None,
) -> MCTask:
    """Draw one implicit-deadline task with the Figure-6 distributions.

    ``crit`` forces the criticality level (used by the Figure-7 variant
    that fills HI and LO budgets independently).
    """
    if crit is None:
        crit = Criticality.HI if rng.uniform() < config.p_hi else Criticality.LO
    period = _draw_period(rng, config)
    u_lo = float(rng.uniform(*config.u_lo_range))
    c_lo = u_lo * period
    if crit is Criticality.HI:
        gamma = float(rng.uniform(*config.gamma_range))
        c_hi = min(gamma * c_lo, period)  # C(HI) <= D(HI) = T structurally
        return MCTask.hi(name, c_lo=c_lo, c_hi=c_hi, d_lo=period, d_hi=period, period=period)
    return MCTask.lo(name, c=c_lo, d_lo=period, t_lo=period)


def _scale_task_u_lo(task: MCTask, factor: float) -> MCTask:
    """Shrink a task's LO utilization by ``factor`` (WCETs scale together)."""
    return replace(task, c_lo=task.c_lo * factor, c_hi=task.c_hi * factor)


def _mode_utils(tasks: List[MCTask]) -> Tuple[float, float]:
    u_lo = sum(t.c_lo / t.t_lo for t in tasks)
    u_hi = sum(t.c_hi / t.t_hi for t in tasks)
    return u_lo, u_hi


def _crit_utils(tasks: List[MCTask]) -> Tuple[float, float]:
    """(U^LO of the LO tasks, U^HI of the HI tasks) — Figure-7 notation."""
    u_lo_of_lo = sum(t.c_lo / t.t_lo for t in tasks if t.crit is Criticality.LO)
    u_hi_of_hi = sum(t.c_hi / t.t_hi for t in tasks if t.crit is Criticality.HI)
    return u_lo_of_lo, u_hi_of_hi


def _metric(tasks: List[MCTask], config: GeneratorConfig) -> float:
    if config.metric == "avg_crit":
        u_lo_of_lo, u_hi_of_hi = _crit_utils(tasks)
        return 0.5 * (u_lo_of_lo + u_hi_of_hi)
    u_lo, u_hi = _mode_utils(tasks)
    if config.metric == "avg":
        return 0.5 * (u_lo + u_hi)
    if config.metric == "max":
        return max(u_lo, u_hi)
    if config.metric == "lo":
        return u_lo
    return u_hi


def _max_admissible_scale(
    tasks: List[MCTask],
    candidate: MCTask,
    u_bound: float,
    config: GeneratorConfig,
) -> float:
    """Largest factor ``f`` so that ``tasks + f*candidate`` respects both
    the metric target and the per-mode cap (utilizations are linear in f)."""
    base = _metric(tasks, config)
    load = _metric(tasks + [candidate], config) - base
    factors = [1.0]
    if load > 0.0:
        factors.append((u_bound - base) / load)
    if config.metric in ("avg", "avg_crit") and math.isfinite(config.cap_each_mode):
        u_lo, u_hi = _mode_utils(tasks)
        c_lo, c_hi = _mode_utils([candidate])
        if c_lo > 0.0:
            factors.append((config.cap_each_mode - u_lo) / c_lo)
        if c_hi > 0.0:
            factors.append((config.cap_each_mode - u_hi) / c_hi)
    return min(factors)


def generate_taskset(
    u_bound: float,
    rng: np.random.Generator,
    config: GeneratorConfig = GeneratorConfig(),
    *,
    name: str = "synthetic",
    min_u_floor: float = 1e-4,
) -> TaskSet:
    """Generate one task set with dimensioning metric ``= u_bound``.

    Follows the add-until-met loop of [4] with the configured overshoot
    policy and dimensioning metric (see :class:`GeneratorConfig`).  The
    returned set is implicit-deadline and un-prepared; apply
    :func:`repro.model.transform.apply_uniform_scaling` afterwards.
    """
    if not 0.0 < u_bound <= 1.0 + 1e-9:
        raise ModelError(f"u_bound must be in (0, 1], got {u_bound}")
    tasks: List[MCTask] = []
    index = 0
    while _metric(tasks, config) < u_bound - 1e-12:
        candidate = random_task(rng, config, name=f"{name}_{index}")
        attempts = 0
        while True:
            scale = _max_admissible_scale(tasks, candidate, u_bound, config)
            if scale >= 1.0 - 1e-12:
                tasks.append(candidate)
                index += 1
                break
            if config.overshoot == "drop":
                return TaskSet(tasks, name=name)
            if config.overshoot == "resample" and attempts < 100:
                candidate = random_task(rng, config, name=f"{name}_{index}")
                attempts += 1
                continue
            # "scale" (and resample fallback): shrink the candidate so every
            # constraint is met exactly, then stop (nothing more fits).
            if scale <= min_u_floor:
                return TaskSet(tasks, name=name)
            tasks.append(_scale_task_u_lo(candidate, scale))
            return TaskSet(tasks, name=f"{name}")
    return TaskSet(tasks, name=name)


def generate_taskset_with_targets(
    u_hi_target: float,
    u_lo_target: float,
    rng: np.random.Generator,
    config: GeneratorConfig = FIG7_CONFIG,
    *,
    name: str = "synthetic",
    jitter: float = 0.0,
) -> TaskSet:
    """Generate a set hitting Figure 7's per-criticality utilizations.

    ``U_HI = sum over HI tasks of C(HI)/T`` and ``U_LO = sum over LO
    tasks of C(LO)/T`` are filled independently; ``jitter`` perturbs each
    target uniformly within ``±jitter`` (the paper samples a ±0.025
    neighbourhood of each grid point).
    """
    if jitter < 0.0:
        raise ModelError(f"jitter must be non-negative, got {jitter}")
    tasks: List[MCTask] = []
    targets = {
        Criticality.HI: max(1e-6, u_hi_target + float(rng.uniform(-jitter, jitter))),
        Criticality.LO: max(1e-6, u_lo_target + float(rng.uniform(-jitter, jitter))),
    }
    index = 0
    for crit, target in targets.items():
        def level_util(task_list: List[MCTask]) -> float:
            level = Criticality.HI if crit is Criticality.HI else Criticality.LO
            return sum(t.utilization(level) for t in task_list if t.crit is crit)

        while level_util(tasks) < target - 1e-12:
            candidate = random_task(rng, config, name=f"{name}_{index}", crit=crit)
            overshoot = level_util(tasks + [candidate]) - target
            if overshoot > 1e-12:
                load = level_util(tasks + [candidate]) - level_util(tasks)
                headroom = target - level_util(tasks)
                if load <= 0.0 or headroom <= 1e-6:
                    break
                candidate = _scale_task_u_lo(candidate, headroom / load)
                tasks.append(candidate)
                index += 1
                break
            tasks.append(candidate)
            index += 1
    return TaskSet(tasks, name=name)


def population(
    u_bound: float,
    count: int,
    seed: int,
    config: GeneratorConfig = GeneratorConfig(),
) -> List[TaskSet]:
    """Generate ``count`` independent task sets at one utilization point.

    A convenience for the Figure-6 sweeps (500 sets per point in the
    paper); seeded for reproducibility.
    """
    rng = np.random.default_rng(seed)
    return [
        generate_taskset(u_bound, rng, config, name=f"u{u_bound:g}_{i}")
        for i in range(count)
    ]
