"""Flight management system workload (Section VI-A).

The paper evaluates "a subset of an industrial implementation of FMS,
which consists of 7 DO-178B criticality level B (HI) and 4 criticality
level C (LO) tasks.  All tasks can be modeled as implicit deadline
sporadic tasks, with task minimum inter-arrival times in the range of
100 ms to 5 s", deferring exact parameters to reference [6].

Reference [6]'s table is not available offline, so this module ships a
*representative* workload honouring every stated structural fact:

* 7 HI tasks and 4 LO tasks,
* implicit deadlines, periods within [100 ms, 5 s],
* avionics-style harmonic-ish periods,
* moderate utilization so that (as the paper reports) the worst-case
  recovery takes "less than 3 s ... with a speedup of 2".

The substitution is recorded in DESIGN.md; Figure 5 reproduces contour
*shapes* over (x, y) and (s, gamma), which depend only on these
structural facts.  Times are in milliseconds.
"""

from __future__ import annotations

from typing import List

from repro.model.task import MCTask
from repro.model.taskset import TaskSet

#: (name, period ms, C(LO) ms) of the 7 DO-178B level-B (HI) tasks.
_HI_SPECS = [
    ("guidance", 100.0, 4.0),
    ("nav_filter", 200.0, 10.0),
    ("flight_plan", 500.0, 20.0),
    ("traj_pred", 1000.0, 45.0),
    ("perf_mgmt", 1000.0, 30.0),
    ("radio_nav", 2000.0, 70.0),
    ("fuel_pred", 5000.0, 150.0),
]

#: (name, period ms, C ms) of the 4 level-C (LO) tasks.
_LO_SPECS = [
    ("display_update", 100.0, 6.0),
    ("datalink", 500.0, 35.0),
    ("logging", 1000.0, 60.0),
    ("maintenance", 5000.0, 250.0),
]

#: Default WCET uncertainty of the HI tasks (Figure 5b sweeps this).
DEFAULT_GAMMA = 2.0


def fms_taskset(gamma: float = DEFAULT_GAMMA) -> TaskSet:
    """Build the FMS task set with HI WCET ratio ``gamma = C(HI)/C(LO)``.

    The returned set is implicit-deadline with no overrun preparation and
    no degradation; apply the Section-V transforms (``x``, ``y``) before
    analysis, as the Figure-5 experiments do.
    """
    if gamma < 1.0:
        raise ValueError(f"gamma must be >= 1, got {gamma}")
    tasks: List[MCTask] = []
    for name, period, c_lo in _HI_SPECS:
        c_hi = min(gamma * c_lo, period)
        tasks.append(
            MCTask.hi(name, c_lo=c_lo, c_hi=c_hi, d_lo=period, d_hi=period, period=period)
        )
    for name, period, c in _LO_SPECS:
        tasks.append(MCTask.lo(name, c=c, d_lo=period, t_lo=period))
    return TaskSet(tasks, name=f"fms_gamma{gamma:g}")


def fms_utilizations(gamma: float = DEFAULT_GAMMA) -> dict:
    """Summary utilizations of the FMS workload (diagnostics/docs)."""
    ts = fms_taskset(gamma)
    return {
        "u_lo_of_hi": ts.u_lo_of_hi,
        "u_hi_of_hi": ts.u_hi_of_hi,
        "u_lo_of_lo": ts.u_lo_of_lo,
        "u_lo_system": ts.u_lo_system,
        "u_hi_system": ts.u_hi_system,
    }
