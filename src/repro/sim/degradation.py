"""Graceful degradation: the paper's own fallback ladder as a runtime policy.

When the platform misbehaves (see :mod:`repro.sim.faults`) a HI-mode
episode can outlive the offline resetting bound ``Delta_R`` — the boost
never fully arrives, throttling cuts it short, or the workload demands
more than ``C(HI)``.  The paper sketches the remedies itself: extend
the boost (Section I's turbo watchdog discussion), degrade LO service by
a factor ``y`` (Eq. 14), terminate LO tasks (Eq. 3), and as a last
resort return to nominal speed and drop all LO work (the Section-I
watchdog fallback).  :class:`DegradationPolicy` arranges those remedies
into an escalation ladder the scheduler climbs *at runtime*, one rung
per expired patience interval, recording which rung was finally needed.

Rungs (cumulative — each keeps the previous rungs' measures active):

====  ===========  ====================================================
rung  name         action at escalation
====  ===========  ====================================================
0     ``NONE``     protocol as designed (boost + offline degradation)
1     ``EXTEND``   re-request the boost and re-arm the thermal
                   residency budget (fight throttling/caps with more
                   turbo time)
2     ``DEGRADE``  degrade LO service *further* at runtime: in-flight
                   and future LO jobs move to ``runtime_y`` times their
                   LO-mode deadline/period
3     ``TERMINATE``  LO tasks lose service for the rest of the episode
                   (pending jobs become background work)
4     ``KILL``     watchdog kill: nominal speed + LO termination — the
                   thermal envelope wins, HI tasks keep only the
                   termination-configuration guarantees
====  ===========  ====================================================

The ladder is evaluated lazily: a rung is climbed only while the episode
is still open when its patience expires, so a healthy run records rung
``NONE`` and never pays any overhead.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional


class Rung(enum.IntEnum):
    """Escalation rungs of the degradation ladder (ordered by severity)."""

    NONE = 0
    EXTEND = 1
    DEGRADE = 2
    TERMINATE = 3
    KILL = 4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class DegradationPolicy:
    """Escalation schedule for the runtime degradation ladder.

    Attributes
    ----------
    reference_delta:
        Expected episode length — normally the offline ``Delta_R`` of
        the configured speedup.  ``None`` lets the scheduler derive a
        workload-based default (the largest finite HI-mode deadline).
    patience:
        Multiplier on ``reference_delta``: the first escalation check
        fires ``patience * reference_delta`` after the mode switch, and
        every further rung one more interval later.  An episode that
        closes before the first check records rung ``NONE``.
    runtime_y:
        Additional LO service degradation applied at rung ``DEGRADE``
        (relative to the tasks' LO-mode parameters, like Eq. 14).
    max_rung:
        Ladder ceiling; escalation stops there (e.g. ``Rung.DEGRADE``
        forbids terminating LO tasks no matter what).
    """

    reference_delta: Optional[float] = None
    patience: float = 1.5
    runtime_y: float = 2.0
    max_rung: Rung = Rung.KILL

    def __post_init__(self) -> None:
        if self.reference_delta is not None and (
            self.reference_delta <= 0.0 or math.isnan(self.reference_delta)
        ):
            raise ValueError(
                f"reference_delta must be positive, got {self.reference_delta}"
            )
        if self.patience <= 0.0 or math.isnan(self.patience):
            raise ValueError(f"patience must be positive, got {self.patience}")
        if self.runtime_y < 1.0 or math.isnan(self.runtime_y):
            raise ValueError(f"runtime_y must be >= 1, got {self.runtime_y}")
        if not isinstance(self.max_rung, Rung) or self.max_rung < Rung.EXTEND:
            raise ValueError(f"max_rung must be a Rung >= EXTEND, got {self.max_rung}")

    def check_interval(self, fallback_reference: float) -> float:
        """Time between escalation checks given a workload-derived fallback."""
        reference = (
            self.reference_delta
            if self.reference_delta is not None
            else fallback_reference
        )
        if not math.isfinite(reference) or reference <= 0.0:
            reference = max(fallback_reference, 1.0)
        return self.patience * reference


@dataclass(frozen=True)
class DegradationEvent:
    """One climbed rung, recorded into the simulation result."""

    time: float
    rung: Rung
    reason: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"t={self.time:g}: {self.rung.name} ({self.reason})"
