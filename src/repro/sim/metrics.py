"""Per-task statistics and miss diagnostics over simulation results.

Turns the raw :class:`~repro.sim.scheduler.SimResult` into the numbers
an evaluation section quotes: response-time percentiles, lateness,
per-task miss ratios, service received by LO tasks across modes (the
degradation actually experienced), and a compact report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.model.task import Criticality
from repro.model.taskset import TaskSet
from repro.sim.degradation import Rung
from repro.sim.scheduler import SimResult


@dataclass(frozen=True)
class TaskStats:
    """Simulation statistics of one task.

    Attributes
    ----------
    released / finished / killed:
        Job counts by final state (pending jobs are the remainder).
    misses:
        Finished-or-expired jobs that violated their deadline.
    response_mean / response_max / response_p99:
        Response-time statistics over finished jobs (NaN when none).
    worst_lateness:
        Largest ``finish - deadline`` over finished jobs (negative
        values mean all jobs finished early).
    throughput:
        Finished jobs per unit time over the simulated horizon.
    """

    name: str
    criticality: Criticality
    released: int
    finished: int
    killed: int
    misses: int
    response_mean: float
    response_max: float
    response_p99: float
    worst_lateness: float
    throughput: float

    @property
    def miss_ratio(self) -> float:
        """Misses over released jobs (0 when nothing was released)."""
        return self.misses / self.released if self.released else 0.0


def task_stats(result: SimResult, task_name: str) -> TaskStats:
    """Compute :class:`TaskStats` for one task of a finished simulation."""
    jobs = [j for j in result.jobs if j.task.name == task_name]
    if not jobs:
        raise KeyError(f"no jobs of task {task_name!r} in the result")
    crit = jobs[0].task.crit
    finished = [j for j in jobs if j.finish is not None]
    responses = np.asarray([j.finish - j.release for j in finished])
    lateness = [
        j.finish - j.abs_deadline
        for j in finished
        if math.isfinite(j.abs_deadline)
    ]
    misses = sum(1 for j in jobs if j in result.misses)
    horizon = result.trace.horizon or 1.0
    return TaskStats(
        name=task_name,
        criticality=crit,
        released=len(jobs),
        finished=len(finished),
        killed=sum(1 for j in jobs if j.killed),
        misses=misses,
        response_mean=float(responses.mean()) if responses.size else math.nan,
        response_max=float(responses.max()) if responses.size else math.nan,
        response_p99=(
            float(np.percentile(responses, 99)) if responses.size else math.nan
        ),
        worst_lateness=max(lateness) if lateness else -math.inf,
        throughput=len(finished) / horizon,
    )


def all_task_stats(result: SimResult) -> Dict[str, TaskStats]:
    """Statistics for every task that released at least one job."""
    names = sorted({j.task.name for j in result.jobs})
    return {name: task_stats(result, name) for name in names}


def lo_service_ratio(result: SimResult, taskset: TaskSet) -> float:
    """LO tasks' delivered jobs relative to undisturbed LO-mode service.

    1.0 means the LO tasks received their full nominal rate despite the
    overruns (the speedup paid for itself); lower values quantify the
    degradation/termination actually suffered.
    """
    horizon = result.trace.horizon
    if horizon <= 0:
        return 0.0
    expected = sum(horizon / t.t_lo for t in taskset.lo_tasks)
    if expected == 0:
        return 1.0
    delivered = sum(
        1
        for j in result.jobs
        if j.task.is_lo and j.finish is not None and not j.background
    )
    return min(delivered / expected, 1.0)


@dataclass(frozen=True)
class FaultStats:
    """Aggregate view of the fault layer's activity during one run.

    Attributes
    ----------
    fault_event_counts:
        Recorded :class:`~repro.sim.faults.FaultEvent` occurrences by
        kind (empty on a fault-free run).
    speed_deficit:
        Integral of requested-minus-delivered speed (work units the
        boost protocol was promised but never received).
    highest_rung:
        Deepest degradation-ladder rung reached across all episodes.
    rung_times:
        First time each rung was entered (by rung name).
    hi_misses / lo_misses:
        Deadline misses split by criticality — the paper's guarantees
        concern HI misses; LO misses measure collateral degradation.
    detection_misses:
        Jobs whose overrun-threshold crossing the (faulty) detector
        missed entirely (mode switch deferred to job completion).
    wcet_faulty_jobs:
        Jobs whose actual demand exceeded the declared ``C(HI)``.
    """

    fault_event_counts: Dict[str, int]
    speed_deficit: float
    highest_rung: Rung
    rung_times: Dict[str, float]
    hi_misses: int
    lo_misses: int
    detection_misses: int
    wcet_faulty_jobs: int


def fault_stats(result: SimResult) -> FaultStats:
    """Distil the fault/degradation telemetry out of a finished run."""
    counts: Dict[str, int] = {}
    for ev in result.fault_events:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1
    rung_times: Dict[str, float] = {}
    for dev in result.degradations:
        rung_times.setdefault(dev.rung.name, dev.time)
    return FaultStats(
        fault_event_counts=counts,
        speed_deficit=result.speed_deficit,
        highest_rung=result.highest_rung,
        rung_times=rung_times,
        hi_misses=result.hi_miss_count,
        lo_misses=result.lo_miss_count,
        detection_misses=sum(1 for j in result.jobs if j.detection_missed),
        wcet_faulty_jobs=sum(1 for j in result.jobs if j.wcet_faulty),
    )


def summarize(result: SimResult, taskset: Optional[TaskSet] = None) -> str:
    """Compact text report of a simulation run."""
    stats = all_task_stats(result)
    header = (
        f"{'task':<14}{'chi':<4}{'rel':>6}{'fin':>6}{'miss':>6}"
        f"{'R_mean':>9}{'R_max':>9}{'late':>9}"
    )
    lines = [header, "-" * len(header)]
    for s in stats.values():
        late = f"{s.worst_lateness:.3g}" if math.isfinite(s.worst_lateness) else "-"
        lines.append(
            f"{s.name:<14}{s.criticality.value:<4}{s.released:>6d}{s.finished:>6d}"
            f"{s.misses:>6d}{s.response_mean:>9.3g}{s.response_max:>9.3g}{late:>9}"
        )
    lines.append(
        f"mode switches: {result.mode_switch_count}, "
        f"max episode: {result.max_episode_length:.4g}, "
        f"boosted: {result.boosted_time:.4g}, "
        f"fallbacks: {result.fallback_count}"
    )
    if taskset is not None:
        lines.append(f"LO service ratio: {lo_service_ratio(result, taskset):.3f}")
    if result.fault_events or result.degradations or result.speed_deficit > 0.0:
        fs = fault_stats(result)
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(fs.fault_event_counts.items()))
        lines.append(
            f"faults: [{kinds or 'none'}], speed deficit: {fs.speed_deficit:.4g}, "
            f"ladder rung: {fs.highest_rung.name}, "
            f"detection misses: {fs.detection_misses}"
        )
    return "\n".join(lines)
