"""Discrete-event uniprocessor EDF simulator with mode switching.

A SimSo-like simulation substrate used to *validate* the paper's offline
bounds (Figures 1 and 3 juxtapose analysis with schedules):

* :mod:`repro.sim.engine` — time-ordered event queue.
* :mod:`repro.sim.job` — runtime job instances.
* :mod:`repro.sim.processor` — variable-speed processor model with an
  energy-accounting hook.
* :mod:`repro.sim.workload` — job sources: synchronous worst case,
  periodic, random sporadic; overrun injection.
* :mod:`repro.sim.scheduler` — the mode-switch protocol of Section II
  on top of preemptive EDF, with temporary speedup.
* :mod:`repro.sim.trace` — traces, metrics, ASCII Gantt rendering.
* :mod:`repro.sim.validate` — analysis-vs-simulation cross-checks.
"""

from repro.sim.scheduler import MCEDFSimulator, SimConfig, SimResult
from repro.sim.workload import (
    BurstySource,
    OverrunModel,
    PeriodicSource,
    SporadicSource,
    SynchronousWorstCaseSource,
)
from repro.sim.validate import ValidationReport, validate_bounds

__all__ = [
    "MCEDFSimulator",
    "SimConfig",
    "SimResult",
    "BurstySource",
    "OverrunModel",
    "PeriodicSource",
    "SporadicSource",
    "SynchronousWorstCaseSource",
    "ValidationReport",
    "validate_bounds",
]
