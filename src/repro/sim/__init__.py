"""Discrete-event uniprocessor EDF simulator with mode switching.

A SimSo-like simulation substrate used to *validate* the paper's offline
bounds (Figures 1 and 3 juxtapose analysis with schedules):

* :mod:`repro.sim.engine` — time-ordered event queue.
* :mod:`repro.sim.job` — runtime job instances.
* :mod:`repro.sim.processor` — variable-speed processor model with an
  energy-accounting hook.
* :mod:`repro.sim.workload` — job sources: synchronous worst case,
  periodic, random sporadic; overrun injection.
* :mod:`repro.sim.scheduler` — the mode-switch protocol of Section II
  on top of preemptive EDF, with temporary speedup.
* :mod:`repro.sim.trace` — traces, metrics, ASCII Gantt rendering.
* :mod:`repro.sim.validate` — analysis-vs-simulation cross-checks.
* :mod:`repro.sim.faults` — composable platform/workload fault models.
* :mod:`repro.sim.degradation` — graceful-degradation fallback ladder.
* :mod:`repro.sim.resilience` — scenario-based fault sweeps vs bounds.
"""

from repro.sim.degradation import DegradationEvent, DegradationPolicy, Rung
from repro.sim.faults import FaultConfig, FaultEvent, FaultInjector
from repro.sim.resilience import (
    FaultScenario,
    ResilienceVerdict,
    ladder_scenarios,
    min_safe_speedup,
    run_scenario,
    run_suite,
    scenario_suite,
    standard_workloads,
)
from repro.sim.scheduler import MCEDFSimulator, SimConfig, SimResult
from repro.sim.workload import (
    BurstySource,
    FaultyJobSource,
    OverrunModel,
    PeriodicSource,
    SporadicSource,
    SynchronousWorstCaseSource,
)
from repro.sim.validate import (
    FaultValidationReport,
    ValidationReport,
    validate_bounds,
    validate_under_faults,
)

__all__ = [
    "MCEDFSimulator",
    "SimConfig",
    "SimResult",
    "BurstySource",
    "FaultyJobSource",
    "OverrunModel",
    "PeriodicSource",
    "SporadicSource",
    "SynchronousWorstCaseSource",
    "ValidationReport",
    "validate_bounds",
    "FaultValidationReport",
    "validate_under_faults",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "DegradationEvent",
    "DegradationPolicy",
    "Rung",
    "FaultScenario",
    "ResilienceVerdict",
    "ladder_scenarios",
    "min_safe_speedup",
    "run_scenario",
    "run_suite",
    "scenario_suite",
    "standard_workloads",
]
