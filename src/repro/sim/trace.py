"""Execution traces, mode timelines and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.task import Criticality


@dataclass(frozen=True)
class ExecutionSlice:
    """A maximal interval in which one job ran at constant speed."""

    start: float
    end: float
    task_name: str
    job_id: int
    speed: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        """Nominal-speed work completed in this slice."""
        return self.duration * self.speed


@dataclass(frozen=True)
class ModeEpisode:
    """One HI-mode episode; ``end is None`` when still open at horizon."""

    start: float
    end: Optional[float]

    @property
    def length(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


@dataclass
class SimTrace:
    """Raw simulation observables for rendering and validation."""

    slices: List[ExecutionSlice] = field(default_factory=list)
    mode_changes: List[Tuple[float, Criticality]] = field(default_factory=list)
    horizon: float = 0.0

    def busy_time(self) -> float:
        """Total processor-busy wall time."""
        return sum(s.duration for s in self.slices)

    def utilization(self) -> float:
        """Busy fraction of the horizon."""
        return self.busy_time() / self.horizon if self.horizon > 0 else 0.0

    def task_slices(self, task_name: str) -> List[ExecutionSlice]:
        """All slices of one task in time order."""
        return [s for s in self.slices if s.task_name == task_name]

    def mode_at(self, time: float) -> Criticality:
        """Operation mode at ``time`` (LO before the first change)."""
        mode = Criticality.LO
        for t, m in self.mode_changes:
            if t <= time:
                mode = m
            else:
                break
        return mode

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt(self, width: int = 80, start: float = 0.0, end: Optional[float] = None) -> str:
        """ASCII Gantt chart: one row per task plus a mode row.

        Each column covers ``(end - start) / width`` time units; a cell
        shows the task that ran for the majority of the column ('#'),
        partially ('+'), or idle ('.').
        """
        end = self.horizon if end is None else end
        if end <= start:
            return "(empty trace)"
        names = sorted({s.task_name for s in self.slices})
        col_dt = (end - start) / width
        lines = []
        for name in names:
            cells = []
            slices = self.task_slices(name)
            for col in range(width):
                lo = start + col * col_dt
                hi = lo + col_dt
                covered = sum(
                    max(0.0, min(s.end, hi) - max(s.start, lo)) for s in slices
                )
                frac = covered / col_dt
                cells.append("#" if frac > 0.5 else ("+" if frac > 0.0 else "."))
            lines.append(f"{name:<14}|{''.join(cells)}|")
        mode_cells = []
        for col in range(width):
            t = start + (col + 0.5) * col_dt
            mode_cells.append("H" if self.mode_at(t) is Criticality.HI else "L")
        lines.append(f"{'mode':<14}|{''.join(mode_cells)}|")
        lines.append(f"{'':<14} t={start:g} .. {end:g}")
        return "\n".join(lines)
