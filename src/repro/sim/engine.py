"""Minimal discrete-event core: a stable, time-ordered event queue.

Events carry a timestamp, a kind tag and an opaque payload.  Ties are
broken by (priority, insertion order) so simultaneous events process
deterministically — releases before completions at the same instant
would change schedules, so the scheduler assigns explicit priorities.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """Kinds of events the MC-EDF simulator processes."""

    RELEASE = "release"          # a job becomes ready
    TIMER = "timer"              # re-dispatch point (completion/threshold)
    DETECT = "detect"            # delayed mode-switch detection (fault layer)
    SPEED = "speed"              # DVFS actuation step (ramp/jitter/throttle)
    WATCHDOG = "watchdog"        # boost-budget fallback (Section I)
    ESCALATE = "escalate"        # degradation-ladder patience check
    HORIZON = "horizon"          # end of simulation

    def default_priority(self) -> int:
        # Completions/timers fire before releases at the same instant so a
        # finishing job frees the processor before new arrivals queue up;
        # a late-detected mode switch lands before simultaneous releases
        # (matching the immediate-detection semantics); actuation steps
        # follow releases; the watchdog and the degradation ladder fire
        # after all of those (budgets measured inclusively).
        order = {
            EventKind.TIMER: 0,
            EventKind.DETECT: 1,
            EventKind.RELEASE: 2,
            EventKind.SPEED: 3,
            EventKind.WATCHDOG: 4,
            EventKind.ESCALATE: 5,
            EventKind.HORIZON: 6,
        }
        return order[self]


@dataclass(order=True)
class _Entry:
    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        priority: Optional[int] = None,
    ) -> _Entry:
        """Schedule an event; returns a handle usable with :meth:`cancel`."""
        if time < 0.0:
            raise ValueError(f"event time must be non-negative, got {time}")
        entry = _Entry(
            time=time,
            priority=kind.default_priority() if priority is None else priority,
            seq=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: _Entry) -> None:
        """Mark an event as void; it will be skipped when popped."""
        entry.cancelled = True

    def pop(self) -> Optional[_Entry]:
        """Next live event in time order, or ``None`` when exhausted."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                return entry
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
