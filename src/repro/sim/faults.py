"""Composable fault models: what a real platform does to the protocol.

The offline guarantees (Theorem 2's ``s_min``, Corollary 5's ``Delta_R``)
assume the processor delivers the requested speed ``s`` *instantly* at
the mode switch, keeps it for the whole episode, detects every overrun
the moment it happens, and that the workload honours its declared WCETs
and the ``T_O`` overrun separation of Section IV.  Real DVFS hardware
violates all of these: voltage/frequency ramps take time, turbo
residency is thermally budgeted, boost levels are capped, and WCETs are
estimates.  This module expresses those violations so the simulator can
measure which guarantees survive them.

Two fault families are modelled:

**Actuation faults** (consumed by the scheduler through
:class:`FaultInjector`):

* *ramp latency* — the speed reaches the requested ``s`` only after
  ``ramp_latency`` time units, as a staircase of ``ramp_steps`` steps;
* *speed capping* — the platform never delivers more than ``speed_cap``
  (requests are silently clamped, as a capped turbo bin would);
* *thermal throttling* — after ``throttle_budget`` time units of boost
  residency within one episode the platform forces the speed down to
  ``throttle_speed``;
* *speed jitter* — the delivered speed wobbles multiplicatively around
  the target, resampled every ``jitter_period``;
* *detection faults* — the LO-WCET overrun threshold crossing is
  noticed only ``detection_latency`` late, and with probability
  ``detection_miss_probability`` it is missed outright (the switch then
  happens only when the overrunning job completes).

**Workload faults** (consumed via
:class:`~repro.sim.workload.FaultyJobSource`):

* *WCET misestimation* — actual demand is ``wcet_error_factor`` times
  the drawn execution time, possibly exceeding ``C(HI)``;
* *release jitter* — releases are delayed by a random amount up to
  ``release_jitter``;
* *overrun bursts* — every HI task overruns for ``overrun_burst_len``
  back-to-back jobs (violating the ``T_O`` separation assumed by
  :mod:`repro.analysis.overrun`), then stays quiet for
  ``overrun_gap_jobs`` jobs.

A default-constructed :class:`FaultConfig` is a *strict no-op*: the
scheduler takes the exact seed code paths and produces bit-identical
results (validated by the resilience test-suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

_EPS = 1e-12

#: Delivered speeds are clamped to this floor so a pathological jitter or
#: throttle configuration can never stall the processor entirely.
MIN_SPEED = 1e-3


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of every injected fault (all off by default).

    Attributes
    ----------
    ramp_latency:
        Time for the DVFS actuator to move from the current speed to a
        newly requested one (0 = instantaneous, the paper's model).
    ramp_steps:
        Staircase resolution of the ramp (the actuator steps through
        this many intermediate operating points).
    speed_cap:
        Maximum speed the platform can deliver; requests above it are
        clamped (``inf`` disables the cap).
    throttle_budget:
        Boost residency allowed per HI-mode episode before thermal
        throttling forces a down-shift (``inf`` disables throttling).
    throttle_speed:
        Speed enforced once the residency budget is exhausted
        (``None`` = nominal speed).
    jitter_amplitude:
        Relative amplitude of multiplicative speed jitter: delivered
        speed is ``target * (1 + U(-a, +a))`` (0 disables jitter).
    jitter_period:
        How often the jitter is resampled while boosted.
    detection_latency:
        Delay between a HI job crossing its LO WCET and the scheduler
        noticing (0 = instantaneous detection, the paper's model).
    detection_miss_probability:
        Chance that a threshold crossing goes entirely unnoticed; the
        mode switch then happens only at the overrunning job's
        completion.
    wcet_error_factor:
        Multiplier on every job's actual execution demand (> 1 models
        systematic WCET underestimation; demand may exceed ``C(HI)``).
    release_jitter:
        Upper bound of the uniform random delay added to every
        non-initial release (sporadic releases stay legal: jitter only
        ever delays).
    overrun_burst_len:
        Number of back-to-back overrunning jobs per HI-task burst
        (values >= 2 violate the ``T_O`` separation of Section IV;
        0 leaves the base overrun model in charge).
    overrun_gap_jobs:
        Quiet (non-overrunning) jobs between bursts.
    seed:
        Seed for the injector's private RNG (jitter, detection misses,
        release jitter) — two simulations with equal configs and seeds
        are identical.
    """

    ramp_latency: float = 0.0
    ramp_steps: int = 4
    speed_cap: float = math.inf
    throttle_budget: float = math.inf
    throttle_speed: Optional[float] = None
    jitter_amplitude: float = 0.0
    jitter_period: float = 1.0
    detection_latency: float = 0.0
    detection_miss_probability: float = 0.0
    wcet_error_factor: float = 1.0
    release_jitter: float = 0.0
    overrun_burst_len: int = 0
    overrun_gap_jobs: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ramp_latency < 0.0 or math.isnan(self.ramp_latency):
            raise ValueError(f"ramp_latency must be >= 0, got {self.ramp_latency}")
        if self.ramp_steps < 1:
            raise ValueError(f"ramp_steps must be >= 1, got {self.ramp_steps}")
        if self.speed_cap <= 0.0 or math.isnan(self.speed_cap):
            raise ValueError(f"speed_cap must be positive, got {self.speed_cap}")
        if self.throttle_budget <= 0.0 or math.isnan(self.throttle_budget):
            raise ValueError(
                f"throttle_budget must be positive, got {self.throttle_budget}"
            )
        if self.throttle_speed is not None and self.throttle_speed <= 0.0:
            raise ValueError(
                f"throttle_speed must be positive, got {self.throttle_speed}"
            )
        if not 0.0 <= self.jitter_amplitude < 1.0:
            raise ValueError(
                f"jitter_amplitude must be in [0, 1), got {self.jitter_amplitude}"
            )
        if self.jitter_period <= 0.0:
            raise ValueError(f"jitter_period must be positive, got {self.jitter_period}")
        if self.detection_latency < 0.0 or math.isnan(self.detection_latency):
            raise ValueError(
                f"detection_latency must be >= 0, got {self.detection_latency}"
            )
        if not 0.0 <= self.detection_miss_probability <= 1.0:
            raise ValueError(
                "detection_miss_probability must be in [0, 1], "
                f"got {self.detection_miss_probability}"
            )
        if self.wcet_error_factor < 1.0 or math.isnan(self.wcet_error_factor):
            raise ValueError(
                f"wcet_error_factor must be >= 1, got {self.wcet_error_factor}"
            )
        if self.release_jitter < 0.0 or math.isnan(self.release_jitter):
            raise ValueError(f"release_jitter must be >= 0, got {self.release_jitter}")
        if self.overrun_burst_len < 0:
            raise ValueError(
                f"overrun_burst_len must be >= 0, got {self.overrun_burst_len}"
            )
        if self.overrun_gap_jobs < 0:
            raise ValueError(
                f"overrun_gap_jobs must be >= 0, got {self.overrun_gap_jobs}"
            )

    # ------------------------------------------------------------------
    # Which subsystems does this configuration touch?
    # ------------------------------------------------------------------
    @property
    def affects_actuation(self) -> bool:
        """True when the delivered speed can differ from the requested one."""
        return (
            self.ramp_latency > 0.0
            or math.isfinite(self.speed_cap)
            or math.isfinite(self.throttle_budget)
            or self.jitter_amplitude > 0.0
        )

    @property
    def affects_detection(self) -> bool:
        """True when mode-switch detection is delayed or lossy."""
        return self.detection_latency > 0.0 or self.detection_miss_probability > 0.0

    @property
    def affects_workload(self) -> bool:
        """True when job releases or demands deviate from the declared model."""
        return (
            self.wcet_error_factor > 1.0
            or self.release_jitter > 0.0
            or self.overrun_burst_len > 0
        )

    @property
    def enabled(self) -> bool:
        """False exactly for the no-op configuration."""
        return self.affects_actuation or self.affects_detection or self.affects_workload


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault occurrence, recorded into the simulation result.

    ``kind`` is one of ``"ramp_step"``, ``"speed_cap"``, ``"throttle"``,
    ``"jitter"``, ``"detection_delay"``, ``"detection_miss"``.
    """

    time: float
    kind: str
    detail: str = ""


class FaultInjector:
    """Runtime state of the actuation/detection faults for one simulation.

    The scheduler consults the injector at every speed request and every
    overrun-threshold crossing; the injector owns a private seeded RNG so
    identical configurations replay identically.
    """

    def __init__(self, config: FaultConfig, nominal_speed: float = 1.0) -> None:
        self.config = config
        self.nominal_speed = nominal_speed
        self.rng = np.random.default_rng(config.seed)
        self.events: List[FaultEvent] = []
        # Residual boost budget of the current episode (refreshed at every
        # mode switch and by the EXTEND degradation rung).
        self._episode_budget = config.throttle_budget

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def deliverable(self, requested: float, time: Optional[float] = None) -> float:
        """Clamp a speed request to what the platform can deliver."""
        capped = min(requested, self.config.speed_cap)
        if time is not None and capped < requested - _EPS:
            self.events.append(
                FaultEvent(time, "speed_cap", f"requested {requested:g}, cap {capped:g}")
            )
        return max(capped, MIN_SPEED)

    def jittered(self, target: float, time: Optional[float] = None) -> float:
        """One jitter sample around ``target`` (identity when disabled)."""
        amp = self.config.jitter_amplitude
        if amp <= 0.0:
            return target
        factor = 1.0 + float(self.rng.uniform(-amp, amp))
        actual = max(target * factor, MIN_SPEED)
        if time is not None:
            self.events.append(
                FaultEvent(time, "jitter", f"target {target:g}, delivered {actual:g}")
            )
        return actual

    def ramp_profile(
        self, time: float, current: float, target: float
    ) -> List[Tuple[float, float]]:
        """Speed staircase from ``current`` to ``target`` starting at ``time``.

        Returns ``[(t_1, v_1), ..., (t_N, v_N = target)]`` with
        ``t_1 > time``; an empty list means the change is instantaneous
        (the caller applies ``target`` directly at ``time``).
        """
        latency = self.config.ramp_latency
        if latency <= 0.0 or abs(target - current) <= _EPS:
            return []
        steps = max(1, self.config.ramp_steps)
        profile = []
        for k in range(1, steps + 1):
            t_k = time + latency * k / steps
            v_k = current + (target - current) * k / steps
            profile.append((t_k, max(v_k, MIN_SPEED)))
        self.events.append(
            FaultEvent(time, "ramp_step", f"{current:g} -> {target:g} over {latency:g}")
        )
        return profile

    # ------------------------------------------------------------------
    # Thermal residency
    # ------------------------------------------------------------------
    def begin_episode(self) -> None:
        """Refresh the per-episode boost residency budget."""
        self._episode_budget = self.config.throttle_budget

    def regrant_budget(self) -> None:
        """EXTEND rung: the policy re-arms the residency budget."""
        self._episode_budget = self.config.throttle_budget

    def throttle_deadline(self, boost_start: float) -> Optional[float]:
        """Instant the current residency budget exhausts (None = never)."""
        if not math.isfinite(self._episode_budget):
            return None
        return boost_start + self._episode_budget

    def throttled_speed(self, time: float) -> float:
        """Speed enforced at a throttle event (recorded as a fault)."""
        speed = (
            self.nominal_speed
            if self.config.throttle_speed is None
            else self.config.throttle_speed
        )
        speed = max(speed, MIN_SPEED)
        self.events.append(
            FaultEvent(time, "throttle", f"boost residency exhausted, forced to {speed:g}")
        )
        return speed

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detection_outcome(self, time: float) -> Tuple[bool, float]:
        """Fate of one threshold crossing: ``(missed, delay)``.

        ``missed`` means the crossing goes unnoticed (switch only at the
        job's completion); otherwise the switch is scheduled ``delay``
        after the crossing.
        """
        cfg = self.config
        if cfg.detection_miss_probability > 0.0 and bool(
            self.rng.uniform() < cfg.detection_miss_probability
        ):
            self.events.append(
                FaultEvent(time, "detection_miss", "overrun threshold unnoticed")
            )
            return True, 0.0
        if cfg.detection_latency > 0.0:
            self.events.append(
                FaultEvent(
                    time, "detection_delay", f"switch delayed by {cfg.detection_latency:g}"
                )
            )
        return False, cfg.detection_latency
