"""Variable-speed uniprocessor model with energy accounting.

The processor executes the running job at its current *speed* (work per
unit time); the scheduler raises the speed to ``s`` on entering HI mode
and restores nominal speed at the reset instant.  Energy is integrated
as ``power(speed) * dt`` with the standard cubic DVFS proxy
``power = speed ** alpha`` (alpha = 3 by default), giving the
cost-of-speedup numbers used by the energy extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class SpeedSegment:
    """A maximal interval of constant processor speed."""

    start: float
    end: float
    speed: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Processor:
    """Tracks speed changes over time and integrates work and energy.

    Two speed timelines are kept: the *actual* delivered speed (what the
    running job progresses at — the existing segment record) and the
    *requested* operating point (what the scheduler asked for).  Without
    faults the two coincide; with an actuation fault layer the gap
    between them is the platform's boost deficit, exposed via
    :meth:`speed_deficit`.
    """

    def __init__(self, nominal_speed: float = 1.0, alpha: float = 3.0) -> None:
        if nominal_speed <= 0.0:
            raise ValueError(f"nominal speed must be positive, got {nominal_speed}")
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        self.nominal_speed = nominal_speed
        self.alpha = alpha
        self._speed = nominal_speed
        self._segments: List[SpeedSegment] = []
        self._segment_start = 0.0
        self._requested = nominal_speed
        self._req_segments: List[SpeedSegment] = []
        self._req_start = 0.0

    @property
    def speed(self) -> float:
        """Current execution rate (work per time unit)."""
        return self._speed

    @property
    def requested_speed(self) -> float:
        """Operating point most recently requested by the scheduler."""
        return self._requested

    def set_speed(self, time: float, speed: float) -> None:
        """Change the actual speed at ``time`` (closes the current segment)."""
        if speed <= 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        if speed == self._speed:
            return
        self._close_segment(time)
        self._speed = speed

    def request_speed(self, time: float, speed: float) -> None:
        """Record the *requested* operating point changing at ``time``.

        Callers pair this with :meth:`set_speed` (possibly at later
        instants, via a fault layer) so that requested-vs-actual
        accounting stays meaningful.
        """
        if speed <= 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        if speed == self._requested:
            return
        if time > self._req_start:
            self._req_segments.append(
                SpeedSegment(self._req_start, time, self._requested)
            )
        self._req_start = max(self._req_start, time)
        self._requested = speed

    def reset_speed(self, time: float) -> None:
        """Return to nominal speed at ``time`` (actual and requested)."""
        self.request_speed(time, self.nominal_speed)
        self.set_speed(time, self.nominal_speed)

    def _close_segment(self, time: float) -> None:
        if time > self._segment_start:
            self._segments.append(SpeedSegment(self._segment_start, time, self._speed))
        self._segment_start = time

    def finish(self, time: float) -> None:
        """Close the trailing segments at the simulation horizon."""
        self._close_segment(time)
        if time > self._req_start:
            self._req_segments.append(SpeedSegment(self._req_start, time, self._requested))
            self._req_start = time

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def segments(self) -> List[SpeedSegment]:
        """Completed constant-speed segments (call :meth:`finish` first)."""
        return list(self._segments)

    def time_at_speed(self, predicate) -> float:
        """Total duration of segments whose speed satisfies ``predicate``."""
        return sum(seg.duration for seg in self._segments if predicate(seg.speed))

    @property
    def boosted_time(self) -> float:
        """Total time spent above nominal speed."""
        return self.time_at_speed(lambda s: s > self.nominal_speed + 1e-12)

    @property
    def requested_segments(self) -> List[SpeedSegment]:
        """Completed requested-speed segments (call :meth:`finish` first)."""
        return list(self._req_segments)

    def speed_deficit(self) -> float:
        """Integral of ``max(0, requested - actual)`` over closed segments.

        Zero on a fault-free run; positive when the platform under-
        delivered the boost (ramp latency, capping, throttling, negative
        jitter).  Units: work (speed x time) the protocol was promised
        but never received.
        """
        deficit = 0.0
        actual = iter(self._segments)
        seg = next(actual, None)
        for req in self._req_segments:
            t = req.start
            while seg is not None and t < req.end - 1e-15:
                if seg.end <= t + 1e-15:
                    seg = next(actual, None)
                    continue
                lo = max(t, seg.start)
                hi = min(req.end, seg.end)
                if hi > lo:
                    deficit += max(0.0, req.speed - seg.speed) * (hi - lo)
                t = hi
                if seg.end <= req.end + 1e-15 and seg.end <= hi + 1e-15:
                    seg = next(actual, None)
        return deficit

    def energy(self, idle_power: float = 0.0, busy_fraction_of: str = "wall") -> float:
        """Cubic-proxy energy over all closed segments.

        The model charges ``speed ** alpha`` per unit time regardless of
        idling (DVFS energy is dominated by the operating point); pass
        ``idle_power`` to add a constant leakage floor.
        """
        total = 0.0
        for seg in self._segments:
            total += (seg.speed ** self.alpha + idle_power) * seg.duration
        return total

    def energy_overhead_vs_nominal(self) -> float:
        """Extra energy relative to running every segment at nominal speed."""
        base = sum(self.nominal_speed ** self.alpha * seg.duration for seg in self._segments)
        return self.energy() - base
