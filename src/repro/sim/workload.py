"""Job sources: arrival processes and overrun injection.

A :class:`JobSource` decides *when* each task releases jobs (subject to
the mode-dependent minimum inter-arrival spacing enforced by the
scheduler) and *how much* each job actually executes.  The
:class:`OverrunModel` injects HI-task overruns — executions beyond
``C(LO)`` — which trigger the mode switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.model.task import MCTask
from repro.sim.faults import FaultConfig

RNGLike = Union[np.random.Generator, int]


def as_rng(rng: Optional[RNGLike], default_seed: int = 0) -> np.random.Generator:
    """Coerce an RNG-or-seed argument into a private seeded generator.

    Every stochastic source takes its randomness through this helper, so
    no source ever touches module-level random state: two sources built
    from equal seeds replay identical traces.
    """
    if rng is None:
        return np.random.default_rng(default_seed)
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(int(rng))


@dataclass
class OverrunModel:
    """Controls actual execution times of released jobs.

    Attributes
    ----------
    probability:
        Chance that a HI job overruns its LO WCET (0 disables overruns;
        1 makes every HI job overrun — the analysis worst case).
    fraction:
        How far into the overrun band an overrunning job executes:
        ``exec = C(LO) + fraction * (C(HI) - C(LO))``; 1.0 is the HI
        WCET.
    normal_fraction:
        Execution of non-overrunning jobs as a fraction of ``C(LO)``
        (1.0 = worst case allowed in LO mode).
    first_job_overruns:
        Force the very first job of every HI task to overrun — handy for
        deterministic validation scenarios.
    rng:
        NumPy generator *or integer seed* for the random draws (unused
        when the model is fully deterministic); a private seeded
        generator is always materialised, never module-level state.
    """

    probability: float = 0.0
    fraction: float = 1.0
    normal_fraction: float = 1.0
    first_job_overruns: bool = False
    rng: Optional[RNGLike] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if not 0.0 < self.normal_fraction <= 1.0:
            raise ValueError(
                f"normal_fraction must be in (0, 1], got {self.normal_fraction}"
            )
        if self.probability > 0.0:
            self.rng = as_rng(self.rng)

    def exec_time(self, task: MCTask, job_index: int) -> float:
        """Actual execution requirement of the ``job_index``-th job."""
        base = self.normal_fraction * task.c_lo
        if not task.is_hi:
            return base
        overruns = self.first_job_overruns and job_index == 0
        if not overruns and self.probability > 0.0:
            overruns = bool(self.rng.uniform() < self.probability)
        if overruns:
            return task.c_lo + self.fraction * (task.c_hi - task.c_lo)
        return base


class JobSource:
    """Base arrival process; subclasses override the two hooks below."""

    def __init__(self, overrun: Optional[OverrunModel] = None) -> None:
        self.overrun = overrun or OverrunModel()

    def initial_release(self, task: MCTask) -> Optional[float]:
        """First release instant of ``task`` (``None``: never releases)."""
        return 0.0

    def next_release(self, task: MCTask, prev_release: float, min_gap: float) -> float:
        """Next release given the minimum spacing ``min_gap`` = ``T(mode)``.

        Must return a value ``>= prev_release + min_gap``.
        """
        return prev_release + min_gap

    def exec_time(self, task: MCTask, job_index: int) -> float:
        """Actual execution demand of the job (delegates to the model)."""
        return self.overrun.exec_time(task, job_index)


class SynchronousWorstCaseSource(JobSource):
    """Every task releases at t = 0 and then as early as permitted.

    This is the demand-bound critical-instant pattern: with
    ``OverrunModel(first_job_overruns=True)`` it exercises the scenarios
    the offline bounds are computed for.
    """


class PeriodicSource(JobSource):
    """Strictly periodic releases with per-task offsets."""

    def __init__(self, offsets: Optional[dict] = None, overrun: Optional[OverrunModel] = None):
        super().__init__(overrun)
        self.offsets = offsets or {}

    def initial_release(self, task: MCTask) -> Optional[float]:
        return float(self.offsets.get(task.name, 0.0))


class BurstySource(JobSource):
    """On/off arrival pattern: bursts of back-to-back releases, then gaps.

    During a burst the task releases as early as legal (the worst-case
    pattern); between bursts it stays silent for ``gap_factor`` periods.
    Burst lengths are geometric with mean ``mean_burst_len``.  This is
    the arrival shape behind the Section-IV remark: overrun *bursts*
    separated by quiet intervals of at least ``T_O``.
    """

    def __init__(
        self,
        rng: RNGLike,
        mean_burst_len: float = 4.0,
        gap_factor: float = 3.0,
        overrun: Optional[OverrunModel] = None,
    ) -> None:
        super().__init__(overrun)
        if mean_burst_len < 1.0:
            raise ValueError(f"mean_burst_len must be >= 1, got {mean_burst_len}")
        if gap_factor < 0.0:
            raise ValueError(f"gap_factor must be >= 0, got {gap_factor}")
        self.rng = as_rng(rng)
        self.mean_burst_len = mean_burst_len
        self.gap_factor = gap_factor
        self._remaining: dict = {}

    def _draw_burst(self) -> int:
        p = 1.0 / self.mean_burst_len
        return int(self.rng.geometric(p))

    def next_release(self, task: MCTask, prev_release: float, min_gap: float) -> float:
        if math.isinf(min_gap):
            return math.inf
        left = self._remaining.get(task.name)
        if left is None or left <= 0:
            self._remaining[task.name] = self._draw_burst()
            left = self._remaining[task.name]
        if left > 1:
            self._remaining[task.name] = left - 1
            return prev_release + min_gap
        self._remaining[task.name] = 0
        return prev_release + min_gap * (1.0 + self.gap_factor)


class SporadicSource(JobSource):
    """Sporadic releases: minimum spacing plus a random extra delay.

    The extra delay is exponential with mean ``mean_slack_factor *
    min_gap``, reproducing bursty-but-legal arrival patterns.
    """

    def __init__(
        self,
        rng: RNGLike,
        mean_slack_factor: float = 0.2,
        overrun: Optional[OverrunModel] = None,
        offsets: Optional[dict] = None,
    ) -> None:
        super().__init__(overrun)
        if mean_slack_factor < 0.0:
            raise ValueError(f"mean_slack_factor must be >= 0, got {mean_slack_factor}")
        self.rng = as_rng(rng)
        self.mean_slack_factor = mean_slack_factor
        self.offsets = offsets or {}

    def initial_release(self, task: MCTask) -> Optional[float]:
        base = float(self.offsets.get(task.name, 0.0))
        if self.mean_slack_factor == 0.0:
            return base
        return base + float(self.rng.exponential(self.mean_slack_factor * task.t_lo))

    def next_release(self, task: MCTask, prev_release: float, min_gap: float) -> float:
        if math.isinf(min_gap):
            return math.inf
        slack = 0.0
        if self.mean_slack_factor > 0.0:
            slack = float(self.rng.exponential(self.mean_slack_factor * min_gap))
        return prev_release + min_gap + slack


class FaultyJobSource(JobSource):
    """Wrap any :class:`JobSource` with the workload faults of a config.

    Applies (see :class:`~repro.sim.faults.FaultConfig`):

    * **WCET misestimation** — the base source's drawn execution time is
      multiplied by ``wcet_error_factor`` (values > 1 push actual demand
      beyond the declared ``C(HI)``; the scheduler marks such jobs so
      the model-level demand validation is suspended for them);
    * **release jitter** — every non-initial release is delayed by a
      uniform random amount up to ``release_jitter`` (still legal
      sporadic behaviour: jitter only delays);
    * **overrun bursts** — HI tasks overrun to their full ``C(HI)`` for
      ``overrun_burst_len`` back-to-back jobs, then run normally for
      ``overrun_gap_jobs`` jobs, violating the ``T_O`` separation the
      Section-IV remark assumes between overruns.

    With a no-op config the wrapper delegates verbatim to the base
    source.
    """

    def __init__(
        self,
        base: JobSource,
        config: FaultConfig,
        rng: Optional[RNGLike] = None,
    ) -> None:
        super().__init__(base.overrun)
        self.base = base
        self.config = config
        self.rng = as_rng(rng, default_seed=config.seed + 1)

    def initial_release(self, task: MCTask) -> Optional[float]:
        return self.base.initial_release(task)

    def next_release(self, task: MCTask, prev_release: float, min_gap: float) -> float:
        nxt = self.base.next_release(task, prev_release, min_gap)
        if self.config.release_jitter > 0.0 and math.isfinite(nxt):
            nxt += float(self.rng.uniform(0.0, self.config.release_jitter))
        return nxt

    def exec_time(self, task: MCTask, job_index: int) -> float:
        demand = self.base.exec_time(task, job_index)
        burst = self.config.overrun_burst_len
        if burst > 0 and task.is_hi:
            cycle = burst + self.config.overrun_gap_jobs
            if cycle <= 0 or job_index % cycle < burst:
                demand = max(demand, task.c_hi)
        return demand * self.config.wcet_error_factor
