"""Preemptive EDF with the mode-switch-plus-speedup protocol.

Runtime protocol (Sections II-IV of the paper):

1. The system starts in LO mode at nominal speed.  HI tasks are
   scheduled against their shortened LO-mode deadlines, LO tasks against
   their normal ones.
2. The instant any HI job executes beyond its LO WCET without
   completing, the system switches to HI mode: the processor speed is
   raised to ``s``, pending HI jobs fall back to their real (HI-mode)
   deadlines, and LO tasks receive their degraded HI-mode service (or
   are terminated; their in-flight jobs then either run in the
   background or are killed, see :class:`SimConfig`).
3. At the first processor idle instant the system resets: LO mode,
   nominal speed, original service for LO tasks.  The offline bound
   ``Delta_R`` (Corollary 5) upper-bounds the duration of step 2-3.

Deadline misses are recorded, never masked; validation asserts that no
miss occurs when ``s >= s_min`` under worst-case workloads.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet
from repro.sim.degradation import DegradationEvent, DegradationPolicy, Rung
from repro.sim.engine import EventKind, EventQueue
from repro.sim.faults import FaultConfig, FaultEvent, FaultInjector
from repro.sim.job import Job
from repro.sim.processor import Processor
from repro.sim.trace import ExecutionSlice, ModeEpisode, SimTrace
from repro.sim.workload import FaultyJobSource, JobSource, SynchronousWorstCaseSource

_EPS = 1e-9


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs.

    Attributes
    ----------
    speedup:
        Processor speed in HI mode (1.0 = no speedup; values below 1
        model the slow-down permitted when degradation frees enough
        capacity, cf. Example 1).
    horizon:
        Simulated time span.
    drop_terminated_carryover:
        Kill in-flight jobs of terminated LO tasks at the switch instead
        of letting them finish in the background (ablation, matches the
        analysis flag of the same name).
    alpha:
        DVFS power-law exponent for energy accounting.
    stop_after_first_reset:
        End the simulation at the first HI-to-LO reset (speeds up
        resetting-time measurements).
    boost_budget:
        Runtime watchdog of Section I: the longest boost episode the
        platform's power management allows.  When an episode reaches the
        budget, the fallback fires — every LO task is terminated for the
        rest of the episode (their pending jobs move to the background)
        and the processor returns to nominal speed, trading service for
        staying inside the thermal envelope.  ``inf`` disables it.
    faults:
        Optional :class:`~repro.sim.faults.FaultConfig` injecting DVFS
        actuation, detection and workload faults.  ``None`` (and the
        default no-op config) leaves the simulator on the exact
        fault-free code paths.
    degradation:
        Optional :class:`~repro.sim.degradation.DegradationPolicy`
        climbing the runtime fallback ladder while an episode refuses to
        close.  ``None`` disables the ladder (the static protocol and
        the ``boost_budget`` watchdog still apply).
    """

    speedup: float = 1.0
    horizon: float = 1000.0
    drop_terminated_carryover: bool = False
    alpha: float = 3.0
    stop_after_first_reset: bool = False
    boost_budget: float = math.inf
    faults: Optional[FaultConfig] = None
    degradation: Optional[DegradationPolicy] = None

    def __post_init__(self) -> None:
        if self.speedup <= 0.0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        if self.horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.boost_budget <= 0.0:
            raise ValueError(f"boost budget must be positive, got {self.boost_budget}")
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise TypeError(f"faults must be a FaultConfig, got {type(self.faults)!r}")
        if self.degradation is not None and not isinstance(
            self.degradation, DegradationPolicy
        ):
            raise TypeError(
                f"degradation must be a DegradationPolicy, got {type(self.degradation)!r}"
            )


@dataclass
class SimResult:
    """Everything the simulation observed.

    Attributes
    ----------
    jobs:
        All released jobs with their final state.
    misses:
        Jobs that finished past their deadline (or were still pending at
        an expired deadline when the horizon was reached).
    episodes:
        HI-mode episodes as :class:`ModeEpisode` records; an episode
        still open at the horizon has ``end = None``.
    trace:
        Execution slices and mode timeline for rendering/validation.
    energy:
        Cubic-proxy energy consumed over the horizon.
    boosted_time:
        Total time spent above nominal speed.
    fault_events:
        Fault occurrences observed by the injector (empty without one).
    degradations:
        Rungs climbed by the degradation ladder, in time order.
    speed_deficit:
        Integral of requested-minus-delivered speed (0 when the
        platform actuated every request faithfully).
    """

    config: SimConfig
    jobs: List[Job] = field(default_factory=list)
    misses: List[Job] = field(default_factory=list)
    episodes: List[ModeEpisode] = field(default_factory=list)
    trace: SimTrace = field(default_factory=SimTrace)
    energy: float = 0.0
    boosted_time: float = 0.0
    fallback_times: List[float] = field(default_factory=list)
    fault_events: List[FaultEvent] = field(default_factory=list)
    degradations: List[DegradationEvent] = field(default_factory=list)
    speed_deficit: float = 0.0

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def hi_miss_count(self) -> int:
        """Deadline misses of HI-criticality jobs (the hard guarantee)."""
        return sum(1 for j in self.misses if j.task.is_hi)

    @property
    def lo_miss_count(self) -> int:
        """Deadline misses of LO-criticality (foreground) jobs."""
        return sum(1 for j in self.misses if j.task.is_lo)

    @property
    def highest_rung(self) -> Rung:
        """Worst degradation rung the ladder had to climb."""
        if not self.degradations:
            return Rung.NONE
        return max(event.rung for event in self.degradations)

    @property
    def max_episode_length(self) -> float:
        """Longest *closed* HI-mode episode (empirical resetting time)."""
        closed = [e.end - e.start for e in self.episodes if e.end is not None]
        return max(closed) if closed else 0.0

    @property
    def mode_switch_count(self) -> int:
        return len(self.episodes)

    @property
    def fallback_count(self) -> int:
        """Times the boost-budget watchdog fired (Section I fallback)."""
        return len(self.fallback_times)

    def response_times(self, task_name: str) -> List[float]:
        """Response times of the finished jobs of one task."""
        return [
            j.response_time()
            for j in self.jobs
            if j.task.name == task_name and j.response_time() is not None
        ]


class MCEDFSimulator:
    """Drives one simulation of a task set under the protocol above."""

    def __init__(
        self,
        taskset: TaskSet,
        config: SimConfig,
        source: Optional[JobSource] = None,
    ) -> None:
        self.taskset = taskset
        self.config = config
        self.source = source or SynchronousWorstCaseSource()
        self._injector: Optional[FaultInjector] = None
        if config.faults is not None and config.faults.enabled:
            self._injector = FaultInjector(config.faults)
            if config.faults.affects_workload and not isinstance(
                self.source, FaultyJobSource
            ):
                self.source = FaultyJobSource(self.source, config.faults)
        self._queue = EventQueue()
        self._processor = Processor(alpha=config.alpha)
        self._mode = Criticality.LO
        self._now = 0.0
        self._ready: List[Job] = []
        self._running: Optional[Job] = None
        self._run_started = 0.0
        self._timer_entry = None
        self._last_release: Dict[str, float] = {}
        self._job_counts: Dict[str, int] = {t.name: 0 for t in taskset}
        self._job_seq = itertools.count()
        self._pending_release: Dict[str, object] = {}
        self._deferred: Dict[str, float] = {}  # task -> earliest legal release
        self._episode_start: Optional[float] = None
        self._watchdog_entry = None
        # Fault/degradation machinery (inert on the fault-free path).
        self._pending_switch_entry = None
        self._speed_entries: List[object] = []
        self._throttle_entry = None
        self._jitter_entry = None
        self._boost_target = config.speedup
        self._escalate_entry = None
        self._rung = Rung.NONE
        self._runtime_y: Optional[float] = None
        self._escalate_interval = 0.0
        if config.degradation is not None:
            finite_dhi = [t.d_hi for t in taskset if math.isfinite(t.d_hi)]
            fallback = max(finite_dhi) if finite_dhi else 1.0
            self._escalate_interval = config.degradation.check_interval(fallback)
        self._result = SimResult(config=config)
        self._stopped = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the simulation and return the collected results."""
        for task in self.taskset:
            first = self.source.initial_release(task)
            if first is not None and first <= self.config.horizon:
                entry = self._queue.push(first, EventKind.RELEASE, task)
                self._pending_release[task.name] = entry
        self._queue.push(self.config.horizon, EventKind.HORIZON)

        while True:
            entry = self._queue.pop()
            if entry is None or self._stopped:
                break
            self._advance(entry.time)
            if entry.kind is EventKind.HORIZON:
                break
            if entry.kind is EventKind.RELEASE:
                self._on_release(entry.payload)
            elif entry.kind is EventKind.TIMER:
                self._on_timer()
            elif entry.kind is EventKind.DETECT:
                self._on_detect()
            elif entry.kind is EventKind.SPEED:
                self._on_speed(entry.payload)
            elif entry.kind is EventKind.WATCHDOG:
                self._on_watchdog()
            elif entry.kind is EventKind.ESCALATE:
                self._on_escalate()
            self._dispatch()

        self._finalize()
        return self._result

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _advance(self, time: float) -> None:
        """Account execution progress of the running job up to ``time``."""
        if time < self._now - _EPS:
            raise RuntimeError(f"time went backwards: {self._now} -> {time}")
        if self._running is not None and time > self._run_started:
            worked = (time - self._run_started) * self._processor.speed
            self._running.executed = min(
                self._running.executed + worked, self._running.exec_time
            )
            self._result.trace.slices.append(
                ExecutionSlice(
                    start=self._run_started,
                    end=time,
                    task_name=self._running.task.name,
                    job_id=self._running.job_id,
                    speed=self._processor.speed,
                )
            )
            self._run_started = time
        self._now = max(self._now, time)

    def _on_release(self, task: MCTask) -> None:
        self._pending_release.pop(task.name, None)
        if self._mode is Criticality.HI and task.terminated_in_hi:
            # Terminated tasks do not release in HI mode; retry at reset.
            self._deferred[task.name] = self._now
            return
        index = self._job_counts[task.name]
        self._job_counts[task.name] = index + 1
        self._last_release[task.name] = self._now
        exec_time = self.source.exec_time(task, index)
        deadline = self._now + self._deadline_of(task)
        wcet_faulty = (
            self._injector is not None
            and self.config.faults.wcet_error_factor > 1.0
            and exec_time > task.c_hi + _EPS
        )
        job = Job(
            task=task,
            release=self._now,
            exec_time=exec_time,
            abs_deadline=deadline,
            wcet_faulty=wcet_faulty,
            job_id=next(self._job_seq),
        )
        self._ready.append(job)
        self._result.jobs.append(job)
        self._schedule_next_release(task, self._now)

    def _deadline_of(self, task: MCTask) -> float:
        """Relative deadline in the current mode, honouring runtime degradation."""
        deadline = task.deadline(self._mode)
        if (
            self._runtime_y is not None
            and self._mode is Criticality.HI
            and task.is_lo
            and not task.terminated_in_hi
        ):
            deadline = max(deadline, self._runtime_y * task.d_lo)
        return deadline

    def _period_of(self, task: MCTask) -> float:
        """Minimum spacing in the current mode, honouring runtime degradation."""
        period = task.period(self._mode)
        if (
            self._runtime_y is not None
            and self._mode is Criticality.HI
            and task.is_lo
            and not task.terminated_in_hi
        ):
            period = max(period, self._runtime_y * task.t_lo)
        return period

    def _schedule_next_release(self, task: MCTask, prev_release: float) -> None:
        min_gap = self._period_of(task)
        nxt = self.source.next_release(task, prev_release, min_gap)
        if math.isfinite(nxt) and nxt <= self.config.horizon:
            entry = self._queue.push(nxt, EventKind.RELEASE, task)
            self._pending_release[task.name] = entry

    def _on_timer(self) -> None:
        """Completion or LO-budget crossing of the running job."""
        self._timer_entry = None
        job = self._running
        if job is None:
            return
        if job.remaining <= _EPS:
            job.finish = self._now
            if job.missed():
                self._result.misses.append(job)
            self._running = None
            if (
                self._mode is Criticality.LO
                and job.task.is_hi
                and job.detection_missed
                and job.overruns
            ):
                # The missed threshold crossing surfaces at completion
                # accounting: switch now, better late than never.
                self._switch_to_hi()
            return
        # Not finished: the timer must be the overrun threshold.
        if (
            self._mode is Criticality.LO
            and job.task.is_hi
            and job.executed >= job.task.c_lo - _EPS
        ):
            self._detect_overrun(job)

    def _detect_overrun(self, job: Job) -> None:
        """React to a LO-WCET threshold crossing, possibly imperfectly."""
        injector = self._injector
        if injector is None or not injector.config.affects_detection:
            self._switch_to_hi()
            return
        if self._pending_switch_entry is not None or job.detection_missed:
            return  # a switch is already underway / this crossing is lost
        missed, delay = injector.detection_outcome(self._now)
        if missed:
            job.detection_missed = True
        elif delay <= 0.0:
            self._switch_to_hi()
        else:
            self._pending_switch_entry = self._queue.push(
                self._now + delay, EventKind.DETECT
            )

    def _on_detect(self) -> None:
        """A delayed overrun detection finally fires."""
        self._pending_switch_entry = None
        if self._mode is Criticality.LO:
            self._switch_to_hi()

    # ------------------------------------------------------------------
    # Mode transitions
    # ------------------------------------------------------------------
    def _switch_to_hi(self) -> None:
        self._mode = Criticality.HI
        self._episode_start = self._now
        self._rung = Rung.NONE
        self._runtime_y = None
        self._apply_boost(fresh_episode=True)
        if math.isfinite(self.config.boost_budget):
            self._watchdog_entry = self._queue.push(
                self._now + self.config.boost_budget, EventKind.WATCHDOG
            )
        if self.config.degradation is not None:
            self._escalate_entry = self._queue.push(
                self._now + self._escalate_interval, EventKind.ESCALATE
            )
        self._result.trace.mode_changes.append((self._now, Criticality.HI))
        # Carry-over jobs adopt their HI-mode deadlines (HI tasks regain
        # their real deadline; LO tasks get the degraded one).
        for job in self._ready + ([self._running] if self._running else []):
            if job is None or job.done:
                continue
            task = job.task
            if task.terminated_in_hi:
                if self.config.drop_terminated_carryover:
                    job.killed = True
                else:
                    job.background = True
                    job.abs_deadline = math.inf
            else:
                job.abs_deadline = job.release + task.d_hi
        self._ready = [j for j in self._ready if not j.killed]
        if self._running is not None and self._running.killed:
            self._running = None
        # Re-space pending releases of LO tasks to the degraded rate.
        for task in self.taskset.lo_tasks:
            entry = self._pending_release.get(task.name)
            if entry is None:
                continue
            if task.terminated_in_hi:
                self._queue.cancel(entry)
                self._pending_release.pop(task.name, None)
                self._deferred[task.name] = self._now
                continue
            last = self._last_release.get(task.name)
            if last is None:
                continue
            earliest = last + task.t_hi
            if entry.time < earliest - _EPS:
                self._queue.cancel(entry)
                if earliest <= self.config.horizon:
                    new_entry = self._queue.push(earliest, EventKind.RELEASE, task)
                    self._pending_release[task.name] = new_entry
                else:
                    self._pending_release.pop(task.name, None)

    # ------------------------------------------------------------------
    # Boost actuation (fault-aware)
    # ------------------------------------------------------------------
    def _apply_boost(self, fresh_episode: bool) -> None:
        """Request the HI-mode speed; the fault layer decides what arrives."""
        s_req = self.config.speedup
        self._processor.request_speed(self._now, s_req)
        injector = self._injector
        if injector is None or not injector.config.affects_actuation:
            self._processor.set_speed(self._now, s_req)
            return
        if fresh_episode:
            injector.begin_episode()
        else:
            injector.regrant_budget()
        target = injector.deliverable(s_req, self._now)
        self._boost_target = target
        actual = injector.jittered(target)
        ramp = injector.ramp_profile(self._now, self._processor.speed, actual)
        self._cancel_speed_events()
        if not ramp:
            self._processor.set_speed(self._now, actual)
        else:
            for t_step, v_step in ramp:
                if t_step <= self.config.horizon:
                    self._speed_entries.append(
                        self._queue.push(t_step, EventKind.SPEED, ("ramp", v_step))
                    )
        throttle_at = injector.throttle_deadline(self._now)
        if throttle_at is not None and throttle_at <= self.config.horizon:
            self._throttle_entry = self._queue.push(
                throttle_at, EventKind.SPEED, ("throttle", None)
            )
        if injector.config.jitter_amplitude > 0.0:
            t_jitter = self._now + injector.config.jitter_period
            if t_jitter <= self.config.horizon:
                self._jitter_entry = self._queue.push(
                    t_jitter, EventKind.SPEED, ("jitter", None)
                )

    def _on_speed(self, payload) -> None:
        """One DVFS actuation step: ramp stair, throttle, or jitter sample."""
        cause, value = payload
        if self._mode is not Criticality.HI or self._injector is None:
            return  # stale event from a closed episode
        if cause == "ramp":
            self._processor.set_speed(self._now, value)
        elif cause == "throttle":
            self._throttle_entry = None
            speed = self._injector.throttled_speed(self._now)
            self._boost_target = speed
            self._cancel_ramp_events()
            self._processor.set_speed(self._now, speed)
        elif cause == "jitter":
            self._jitter_entry = None
            self._processor.set_speed(
                self._now, self._injector.jittered(self._boost_target, self._now)
            )
            t_next = self._now + self._injector.config.jitter_period
            if t_next <= self.config.horizon:
                self._jitter_entry = self._queue.push(
                    t_next, EventKind.SPEED, ("jitter", None)
                )

    def _cancel_ramp_events(self) -> None:
        for entry in self._speed_entries:
            self._queue.cancel(entry)
        self._speed_entries = []

    def _cancel_speed_events(self) -> None:
        self._cancel_ramp_events()
        if self._throttle_entry is not None:
            self._queue.cancel(self._throttle_entry)
            self._throttle_entry = None
        if self._jitter_entry is not None:
            self._queue.cancel(self._jitter_entry)
            self._jitter_entry = None

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _on_escalate(self) -> None:
        """Patience expired with the episode still open: climb one rung."""
        self._escalate_entry = None
        policy = self.config.degradation
        if policy is None or self._mode is not Criticality.HI:
            return
        if self._rung >= policy.max_rung:
            return
        self._rung = Rung(self._rung + 1)
        open_for = self._now - (self._episode_start or self._now)
        self._result.degradations.append(
            DegradationEvent(
                self._now, self._rung, f"episode open for {open_for:.6g}"
            )
        )
        if self._rung is Rung.EXTEND:
            self._apply_boost(fresh_episode=False)
        elif self._rung is Rung.DEGRADE:
            self._apply_runtime_degradation()
        elif self._rung is Rung.TERMINATE:
            self._terminate_lo_service()
        elif self._rung is Rung.KILL:
            self._cancel_speed_events()
            self._processor.reset_speed(self._now)
            self._terminate_lo_service()
        if self._rung < policy.max_rung:
            self._escalate_entry = self._queue.push(
                self._now + self._escalate_interval, EventKind.ESCALATE
            )

    def _apply_runtime_degradation(self) -> None:
        """DEGRADE rung: stretch LO service to ``runtime_y`` at runtime."""
        self._runtime_y = self.config.degradation.runtime_y
        for job in self._ready + ([self._running] if self._running else []):
            if (
                job is None
                or job.done
                or job.background
                or not job.task.is_lo
                or job.task.terminated_in_hi
            ):
                continue
            relaxed = job.release + self._deadline_of(job.task)
            if relaxed > job.abs_deadline:
                job.abs_deadline = relaxed
        for task in self.taskset.lo_tasks:
            if task.terminated_in_hi:
                continue
            entry = self._pending_release.get(task.name)
            last = self._last_release.get(task.name)
            if entry is None or last is None:
                continue
            earliest = last + self._period_of(task)
            if entry.time < earliest - _EPS:
                self._queue.cancel(entry)
                if earliest <= self.config.horizon:
                    self._pending_release[task.name] = self._queue.push(
                        earliest, EventKind.RELEASE, task
                    )
                else:
                    self._pending_release.pop(task.name, None)

    def _terminate_lo_service(self) -> None:
        """Drop LO service for the rest of the episode (Eq. 3 at runtime)."""
        for job in self._ready + ([self._running] if self._running else []):
            if job is None or job.done or not job.task.is_lo:
                continue
            job.background = True
            job.abs_deadline = math.inf
        for task in self.taskset.lo_tasks:
            entry = self._pending_release.get(task.name)
            if entry is not None:
                self._queue.cancel(entry)
                self._pending_release.pop(task.name, None)
            self._deferred[task.name] = self._now

    def _on_watchdog(self) -> None:
        """Boost-budget exhausted: fall back to termination (Section I).

        The processor returns to nominal speed and every LO task loses
        its service for the remainder of the episode — pending LO jobs
        become background work and further LO releases are deferred to
        the next reset.  HI tasks keep their guarantees: the offline
        analysis of the termination configuration still applies from
        this instant on.
        """
        self._watchdog_entry = None
        if self._mode is not Criticality.HI:
            return
        self._result.fallback_times.append(self._now)
        self._cancel_speed_events()
        self._processor.reset_speed(self._now)
        self._terminate_lo_service()

    def _reset_to_lo(self) -> None:
        self._mode = Criticality.LO
        if self._watchdog_entry is not None:
            self._queue.cancel(self._watchdog_entry)
            self._watchdog_entry = None
        if self._escalate_entry is not None:
            self._queue.cancel(self._escalate_entry)
            self._escalate_entry = None
        self._cancel_speed_events()
        self._runtime_y = None
        self._processor.reset_speed(self._now)
        self._result.trace.mode_changes.append((self._now, Criticality.LO))
        if self._episode_start is not None:
            self._result.episodes.append(ModeEpisode(self._episode_start, self._now))
            self._episode_start = None
        # Resume terminated tasks: earliest legal release respecting the
        # original spacing from their last actual release.
        for name in list(self._deferred):
            task = self.taskset.by_name(name)
            last = self._last_release.get(name)
            earliest = self._now if last is None else max(self._now, last + task.t_lo)
            if earliest <= self.config.horizon:
                entry = self._queue.push(earliest, EventKind.RELEASE, task)
                self._pending_release[name] = entry
            del self._deferred[name]
        if self.config.stop_after_first_reset:
            self._stopped = True

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def _pick_job(self) -> Optional[Job]:
        live = [j for j in self._ready if not j.done]
        self._ready = live
        foreground = [j for j in live if not j.background]
        pool = foreground if foreground else live
        if not pool:
            return None
        return min(pool, key=lambda j: (j.abs_deadline, j.release, j.job_id))

    def _dispatch(self) -> None:
        if self._running is not None and not self._running.done:
            self._ready.append(self._running)
        elif self._running is not None:
            pass  # finished job already accounted
        self._running = None
        if self._timer_entry is not None:
            self._queue.cancel(self._timer_entry)
            self._timer_entry = None

        job = self._pick_job()
        if job is None:
            if self._mode is Criticality.HI:
                self._reset_to_lo()
            return
        self._ready.remove(job)
        self._running = job
        self._run_started = self._now
        speed = self._processor.speed
        dt_done = job.remaining / speed
        dt_threshold = math.inf
        if (
            self._mode is Criticality.LO
            and job.task.is_hi
            and job.overruns
            and self._pending_switch_entry is None
            and not job.detection_missed
        ):
            budget = job.task.c_lo - job.executed
            if budget > _EPS:
                dt_threshold = budget / speed
            else:
                dt_threshold = 0.0
        dt = min(dt_done, dt_threshold)
        self._timer_entry = self._queue.push(self._now + dt, EventKind.TIMER)

    # ------------------------------------------------------------------
    # Wrap-up
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        end = self._now
        self._processor.finish(end)
        if self._episode_start is not None:
            self._result.episodes.append(ModeEpisode(self._episode_start, None))
        # Pending jobs whose deadline already expired count as misses.
        for job in self._result.jobs:
            if not job.done and job.abs_deadline < end - _EPS and not job.background:
                self._result.misses.append(job)
        self._result.energy = self._processor.energy()
        self._result.boosted_time = self._processor.boosted_time
        self._result.speed_deficit = self._processor.speed_deficit()
        if self._injector is not None:
            self._result.fault_events = list(self._injector.events)
        self._result.trace.horizon = end


def simulate(
    taskset: TaskSet,
    config: SimConfig,
    source: Optional[JobSource] = None,
) -> SimResult:
    """One-call convenience wrapper around :class:`MCEDFSimulator`."""
    return MCEDFSimulator(taskset, config, source).run()
