"""Scenario-based resilience harness: fault sweeps vs the paper bounds.

The analysis (Theorem 2, Corollary 5) assumes an ideal platform: the
speedup ``s`` is available instantly, mode switches are detected the
moment a HI job crosses ``C(LO)``, and no job ever exceeds its declared
``C(HI)``.  This module asks *how gracefully the guarantees erode* when
those assumptions fail.  It builds parameterised fault scenarios — one
per fault class, with a scalar ``intensity`` in [0, 1] mapping to
physically meaningful magnitudes (fractions of ``Delta_R``, of the
boost headroom ``s - 1``, of task periods) — runs the adversarial
workload through the fault layer, and reports a structured
:class:`ResilienceVerdict` per (workload, scenario) pair.

Guarantee accounting follows :func:`repro.sim.validate.validate_under_faults`:
the bounds are computed for the *fault-free* platform, so a verdict
with ``hi_ok`` false pinpoints exactly which fault class (at which
intensity) breaks the Theorem-2 sufficiency, and ``reset_ok`` false
marks empirical episodes outrunning the Corollary-5 ``Delta_R``.

At intensity 0 every scenario degenerates to a no-op fault config and
the verdicts reproduce the fault-free validator verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.api import (
    BatchRunner,
    min_preparation_factor,
    min_speedup,
    min_speedup_margin,
    resetting_time,
)
from repro.model.taskset import TaskSet
from repro.model.transform import apply_uniform_scaling
from repro.sim.degradation import DegradationPolicy, Rung
from repro.sim.faults import FaultConfig
from repro.sim.scheduler import SimConfig, simulate
from repro.sim.validate import validate_under_faults
from repro.sim.workload import OverrunModel, SynchronousWorstCaseSource


@dataclass(frozen=True)
class FaultScenario:
    """One named fault configuration at a given intensity."""

    name: str
    description: str
    intensity: float
    fault: FaultConfig
    degradation: Optional[DegradationPolicy] = None


@dataclass(frozen=True)
class ResilienceVerdict:
    """Outcome of one (workload, scenario) resilience run.

    ``hi_ok`` is the Theorem-2 sufficiency check (no HI miss), and
    ``reset_ok`` the Corollary-5 soundness check (every episode within
    the fault-free ``Delta_R``); ``lo_misses`` measures collateral
    damage to the LO tasks, which the paper's HI-mode guarantees do not
    cover.  ``margin`` is the analytic speedup headroom
    (:func:`repro.analysis.sensitivity.min_speedup_margin`) at the
    simulated speedup — faults that consume more than this headroom are
    the ones expected to break ``hi_ok``.  ``min_restoring_s`` (when
    computed) is the empirically smallest speedup restoring a HI-miss-
    free run under the same faults; infinite when no finite speedup
    helps (e.g. a hard actuation cap).
    """

    workload: str
    scenario: str
    intensity: float
    s_min: float
    delta_r: float
    speedup: float
    margin: float
    hi_misses: int
    lo_misses: int
    max_episode: float
    episodes: int
    highest_rung: Rung
    speed_deficit: float
    fault_events: int
    min_restoring_s: Optional[float] = None

    @property
    def hi_ok(self) -> bool:
        return self.hi_misses == 0

    @property
    def reset_ok(self) -> bool:
        return self.max_episode <= self.delta_r + 1e-6

    def to_record(self) -> Dict:
        """Flat dictionary for CSV export (see :func:`repro.io.write_records_csv`)."""
        return {
            "workload": self.workload,
            "scenario": self.scenario,
            "intensity": self.intensity,
            "s_min": self.s_min,
            "delta_r": self.delta_r,
            "speedup": self.speedup,
            "margin": self.margin,
            "hi_misses": self.hi_misses,
            "lo_misses": self.lo_misses,
            "hi_ok": self.hi_ok,
            "reset_ok": self.reset_ok,
            "max_episode": self.max_episode,
            "episodes": self.episodes,
            "highest_rung": self.highest_rung.name,
            "speed_deficit": self.speed_deficit,
            "fault_events": self.fault_events,
            "min_restoring_s": (
                "" if self.min_restoring_s is None else self.min_restoring_s
            ),
        }


# ---------------------------------------------------------------------------
# Scenario construction
# ---------------------------------------------------------------------------
def scenario_suite(
    taskset: TaskSet,
    intensity: float,
    *,
    speedup: Optional[float] = None,
    seed: int = 0,
) -> List[FaultScenario]:
    """The standard per-fault-class scenarios at one intensity.

    Intensity maps to magnitudes anchored in the task set's own
    analysis numbers, so ``intensity = 1`` is "as large as the quantity
    it perturbs":

    ========== =========================================================
    scenario   mapping
    ========== =========================================================
    healthy    all-zero config (strict no-op baseline)
    ramp       DVFS ramp latency = ``intensity * Delta_R``
    cap        deliverable speed capped at ``s - intensity * (s - 1)``
    throttle   boost residency budget = ``(1 - intensity) * Delta_R``,
               then forced to nominal speed
    jitter     multiplicative speed jitter, amplitude ``0.3 * intensity``
    detection  mode-switch detection delayed by up to
               ``intensity * min HI D(LO) / 2``; 20 % of that intensity
               as outright miss probability
    wcet       actual demand = ``(1 + intensity) * declared``
    burst      ``1 + round(3 * intensity)`` back-to-back overruns per
               burst (violating the ``T_O`` separation)
    arrival    release jitter up to ``intensity * min T(LO) / 4``
    combined   throttle + wcet together (exercises the deep ladder)
    ========== =========================================================
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    s_res = min_speedup(taskset)
    if not math.isfinite(s_res.s_min):
        raise ValueError("task set needs infinite speedup; no scenarios to build")
    s = speedup if speedup is not None else max(s_res.s_min * (1.0 + 1e-9), 1e-6)
    delta_r = resetting_time(taskset, s).delta_r
    ref = delta_r if math.isfinite(delta_r) and delta_r > 0 else max(
        t.t_lo for t in taskset
    )
    hi_dls = [t.d_lo for t in taskset.hi_tasks]
    min_hi_dl = min(hi_dls) if hi_dls else ref
    min_period = min(t.t_lo for t in taskset)
    headroom = max(s - 1.0, 0.0)
    policy = DegradationPolicy(reference_delta=ref)

    def cfg(**kw) -> FaultConfig:
        return FaultConfig(seed=seed, **kw)

    i = intensity
    scenarios = [
        FaultScenario(
            "healthy", "no faults (baseline, strict no-op)", i, cfg(), None
        ),
        FaultScenario(
            "ramp",
            "DVFS actuation ramps to the boost speed over a latency window",
            i,
            cfg(ramp_latency=i * ref),
            policy,
        ),
        FaultScenario(
            "cap",
            "platform cannot deliver the full boost speed",
            i,
            cfg(speed_cap=max(s - i * headroom, 1.0) if i > 0 else math.inf),
            policy,
        ),
        FaultScenario(
            "throttle",
            "thermal throttling after a boost-residency budget",
            i,
            cfg(
                throttle_budget=max((1.0 - i), 0.05) * ref if i > 0 else math.inf,
                throttle_speed=1.0 if i > 0 else None,
            ),
            policy,
        ),
        FaultScenario(
            "jitter",
            "transient multiplicative speed jitter while boosted",
            i,
            cfg(jitter_amplitude=0.3 * i, jitter_period=max(ref / 8.0, 1e-3)),
            policy,
        ),
        FaultScenario(
            "detection",
            "mode-switch detection is late (and sometimes missed)",
            i,
            cfg(
                detection_latency=i * min_hi_dl / 2.0,
                detection_miss_probability=0.2 * i,
            ),
            policy,
        ),
        FaultScenario(
            "wcet",
            "actual demand exceeds the declared C(HI) (WCET misestimation)",
            i,
            cfg(wcet_error_factor=1.0 + i),
            policy,
        ),
        FaultScenario(
            "burst",
            "back-to-back overrun bursts violating the T_O separation",
            i,
            cfg(
                overrun_burst_len=1 + round(3 * i) if i > 0 else 0,
                overrun_gap_jobs=max(0, round(4 * (1.0 - i))),
            ),
            policy,
        ),
        FaultScenario(
            "arrival",
            "release jitter delaying sporadic arrivals",
            i,
            cfg(release_jitter=i * min_period / 4.0),
            policy,
        ),
        FaultScenario(
            "combined",
            "throttling plus WCET misestimation (deep-ladder stress)",
            i,
            cfg(
                throttle_budget=(1.0 - 0.5 * i) * ref if i > 0 else math.inf,
                throttle_speed=1.0 if i > 0 else None,
                wcet_error_factor=1.0 + 0.5 * i,
            ),
            policy,
        ),
    ]
    return scenarios


# ---------------------------------------------------------------------------
# Standard workloads
# ---------------------------------------------------------------------------
def standard_workloads(quick: bool = False, seed: int = 2015) -> Dict[str, TaskSet]:
    """The workloads the resilience suite sweeps.

    Table I (plain and degraded) always; unless ``quick``, also the FMS
    case study (prepared with the minimal density-feasible ``x`` and
    ``y = 2``, as in Figure 5b) and a seeded synthetic set from the
    Figure-6 generator, prepared the same way.
    """
    from repro.experiments.table1 import table1_degraded_taskset, table1_taskset
    from repro.generator.fms import fms_taskset
    from repro.generator.taskgen import GeneratorConfig, generate_taskset

    workloads: Dict[str, TaskSet] = {
        "table1": table1_taskset(),
        "table1-degraded": table1_degraded_taskset(),
    }
    if not quick:
        fms = fms_taskset()
        x = min_preparation_factor(fms, method="density")
        workloads["fms"] = apply_uniform_scaling(fms, x, 2.0)
        rng = np.random.default_rng(seed)
        base = generate_taskset(
            0.6, rng, GeneratorConfig(period_range=(10.0, 100.0)), name="synthetic"
        )
        xs = min_preparation_factor(base, method="density")
        workloads["synthetic"] = apply_uniform_scaling(base, xs, 2.0)
    return workloads


# ---------------------------------------------------------------------------
# Running scenarios
# ---------------------------------------------------------------------------
def run_scenario(
    taskset: TaskSet,
    scenario: FaultScenario,
    *,
    workload_name: str = "taskset",
    speedup: Optional[float] = None,
    horizon: Optional[float] = None,
    find_restoring: bool = False,
) -> ResilienceVerdict:
    """Run one scenario and cross-check the observed run vs the bounds."""
    report = validate_under_faults(
        taskset,
        fault=scenario.fault if scenario.fault.enabled else None,
        degradation=scenario.degradation if scenario.fault.enabled else None,
        speedup=speedup,
        horizon=horizon,
    )
    restoring: Optional[float] = None
    if find_restoring and report.hi_misses > 0:
        restoring = min_safe_speedup(
            taskset, scenario.fault, degradation=scenario.degradation, horizon=horizon
        )
    return ResilienceVerdict(
        workload=workload_name,
        scenario=scenario.name,
        intensity=scenario.intensity,
        s_min=report.s_min,
        delta_r=report.delta_r,
        speedup=report.simulated_speedup,
        margin=min_speedup_margin(taskset, report.simulated_speedup),
        hi_misses=report.hi_misses,
        lo_misses=report.lo_misses,
        max_episode=report.max_episode,
        episodes=report.episodes,
        highest_rung=report.highest_rung,
        speed_deficit=report.speed_deficit,
        fault_events=report.fault_event_count,
        min_restoring_s=restoring,
    )


def min_safe_speedup(
    taskset: TaskSet,
    fault: FaultConfig,
    *,
    degradation: Optional[DegradationPolicy] = None,
    horizon: Optional[float] = None,
    tol: float = 1e-2,
    s_max: float = 64.0,
) -> float:
    """Smallest speedup with zero HI misses under ``fault`` (bisection).

    The empirical counterpart of Theorem 2 on the *faulty* platform.
    Returns ``inf`` when even ``s_max`` cannot restore the guarantee —
    which is the honest answer for hard actuation caps, where asking
    for more speed changes nothing.
    """
    if horizon is None:
        horizon = 20.0 * max(t.t_lo for t in taskset)

    source = SynchronousWorstCaseSource(
        OverrunModel(first_job_overruns=True, probability=1.0)
    )

    def safe(s: float) -> bool:
        config = SimConfig(
            speedup=s,
            horizon=horizon,
            faults=fault if fault.enabled else None,
            degradation=degradation if fault.enabled else None,
        )
        result = simulate(taskset, config, source)
        return result.hi_miss_count == 0

    lo = max(min_speedup(taskset).s_min, 1e-6)
    if safe(lo):
        return lo
    hi = max(2.0 * lo, 2.0)
    while not safe(hi):
        hi *= 2.0
        if hi > s_max:
            return math.inf
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if safe(mid):
            hi = mid
        else:
            lo = mid
    return hi


# ---------------------------------------------------------------------------
# Degradation-ladder demonstrations
# ---------------------------------------------------------------------------
def ladder_scenarios() -> List[FaultScenario]:
    """One scenario per degradation rung, on the Table I workload.

    Each scenario's fault severity is chosen so that the named rung is
    the deepest one the policy manager reaches (verified by
    ``tests/test_resilience.py``); together they walk the whole ladder:

    * ``rung-none`` — healthy platform, episodes close within
      ``Delta_R``, ladder never consulted;
    * ``rung-extend`` — a boost ramp stretches the episode past the
      first patience check: the manager re-grants (extends) the boost
      and the episode then closes;
    * ``rung-degrade`` — throttling cuts the boost short: extending is
      not enough, LO service is degraded (periods/deadlines times
      ``runtime_y``) before the backlog drains;
    * ``rung-terminate`` — misestimated WCETs keep the backlog growing
      through two checks; LO tasks are terminated (Eq. 3 fallback);
    * ``rung-kill`` — a hard actuation cap plus overrun bursts: no
      speed-side remedy exists, the watchdog-style kill rung drops the
      boost request and sheds all LO work.
    """
    policy = DegradationPolicy(patience=1.05)

    def cfg(**kw) -> FaultConfig:
        return FaultConfig(seed=7, **kw)

    return [
        FaultScenario(
            "rung-none", "healthy platform; ladder stays at NONE", 0.0, cfg(), policy
        ),
        FaultScenario(
            "rung-extend",
            "slow boost ramp; one EXTEND re-grant suffices",
            0.4,
            cfg(ramp_latency=4.0, ramp_steps=8),
            policy,
        ),
        FaultScenario(
            "rung-degrade",
            "early throttling; LO degradation drains the backlog",
            0.6,
            cfg(throttle_budget=0.5, throttle_speed=1.05),
            DegradationPolicy(patience=1.05, max_rung=Rung.DEGRADE),
        ),
        FaultScenario(
            "rung-terminate",
            "WCET misestimation; LO termination needed",
            0.8,
            cfg(throttle_budget=2.0, throttle_speed=1.1, wcet_error_factor=1.3),
            DegradationPolicy(patience=1.05, max_rung=Rung.TERMINATE),
        ),
        FaultScenario(
            "rung-kill",
            "hard cap plus overrun bursts; watchdog kill rung",
            1.0,
            cfg(speed_cap=1.05, wcet_error_factor=1.5, overrun_burst_len=3),
            DegradationPolicy(patience=1.05),
        ),
    ]


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------
def _run_scenario_item(item) -> ResilienceVerdict:
    """Process-pool entry point: one (taskset, scenario, kwargs) work item."""
    taskset, scenario, kwargs = item
    return run_scenario(taskset, scenario, **kwargs)


def run_suite(
    *,
    quick: bool = False,
    intensities: Optional[Sequence[float]] = None,
    find_restoring: Optional[bool] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[ResilienceVerdict]:
    """Sweep every standard workload through every scenario.

    ``quick`` restricts to the Table I workloads and two intensities
    (the CI smoke configuration, a few seconds); the full sweep adds
    the FMS and synthetic workloads, a mid intensity and the empirical
    minimum-restoring-speedup search for broken scenarios.

    ``jobs`` fans the (workload, scenario) runs over worker processes
    through the batch pipeline; each run is seeded and independent, so
    the verdict list is identical to the serial sweep.
    """
    if intensities is None:
        intensities = (0.0, 1.0) if quick else (0.0, 0.5, 1.0)
    if find_restoring is None:
        find_restoring = not quick
    labels: List[str] = []
    items: List[tuple] = []
    for wl_name, taskset in standard_workloads(quick=quick).items():
        for intensity in intensities:
            for scenario in scenario_suite(taskset, intensity, seed=seed):
                labels.append(f"{wl_name} / {scenario.name} @ {intensity:g}")
                items.append(
                    (
                        taskset,
                        scenario,
                        dict(workload_name=wl_name, find_restoring=find_restoring),
                    )
                )
    from repro.experiments.table1 import table1_taskset

    ladder_ts = table1_taskset()
    for scenario in ladder_scenarios():
        labels.append(f"ladder / {scenario.name}")
        items.append(
            (
                ladder_ts,
                scenario,
                dict(workload_name="table1-ladder", speedup=2.0, horizon=400.0),
            )
        )
    if jobs == 1:
        verdicts = []
        for label, item in zip(labels, items):
            if progress is not None:
                progress(label)
            verdicts.append(_run_scenario_item(item))
        return verdicts
    reporter = None
    if progress is not None:
        def reporter(done: int, total: int) -> None:
            progress(f"{labels[done - 1]} [{done}/{total}]")
    runner = BatchRunner(jobs=jobs, progress=reporter)
    return runner.map_items(_run_scenario_item, items)


def render(verdicts: Sequence[ResilienceVerdict]) -> str:
    """Text table over the verdicts (one row per workload x scenario)."""
    header = (
        f"{'workload':<16}{'scenario':<15}{'int':>5}{'s':>9}{'margin':>10}"
        f"{'HImiss':>7}{'LOmiss':>7}{'maxEp':>10}{'dR':>10}{'rung':>11}"
        f"{'deficit':>10}{'ok':>4}"
    )
    lines = [header, "-" * len(header)]
    for v in verdicts:
        ok = "y" if v.hi_ok and v.reset_ok else "N"
        lines.append(
            f"{v.workload:<16}{v.scenario:<15}{v.intensity:>5.2f}{v.speedup:>9.3g}"
            f"{v.margin:>10.3g}{v.hi_misses:>7d}{v.lo_misses:>7d}"
            f"{v.max_episode:>10.4g}{v.delta_r:>10.4g}{v.highest_rung.name:>11}"
            f"{v.speed_deficit:>10.3g}{ok:>4}"
        )
    broken = [v for v in verdicts if not v.hi_ok]
    lines.append(
        f"{len(verdicts)} runs, {len(broken)} with HI misses, "
        f"{sum(1 for v in verdicts if not v.reset_ok)} past Delta_R"
    )
    for v in broken:
        if v.min_restoring_s is not None:
            lines.append(
                f"  {v.workload}/{v.scenario}@{v.intensity:g}: "
                f"min restoring s = {v.min_restoring_s:.4g}"
                + (" (no finite s helps)" if math.isinf(v.min_restoring_s) else "")
            )
    return "\n".join(lines)
