"""Cross-checks: do simulations respect the offline bounds?

Three properties are validated (these mirror what Figures 1 and 3
illustrate for the example task set):

1. **Speedup sufficiency** — with ``s >= s_min`` (Theorem 2), no
   deadline is missed even when every HI task overruns to its HI WCET
   under the synchronous worst-case arrival pattern.
2. **Resetting-time soundness** — every closed HI-mode episode is no
   longer than ``Delta_R(s)`` (Corollary 5).
3. **Necessity witness (best effort)** — running noticeably below
   ``s_min`` under the same adversarial workload *may* produce a miss;
   when it does, the witness is reported (absence of a miss is not a
   counterexample, since the sporadic worst case need not be the
   synchronous one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.api import min_speedup, resetting_time
from repro.model.taskset import TaskSet
from repro.sim.degradation import DegradationPolicy, Rung
from repro.sim.faults import FaultConfig
from repro.sim.scheduler import SimConfig, SimResult, simulate
from repro.sim.workload import OverrunModel, SynchronousWorstCaseSource


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_bounds` for one task set.

    Attributes
    ----------
    s_min:
        Theorem-2 minimum speedup.
    delta_r:
        Corollary-5 resetting bound at the simulated speedup.
    simulated_speedup:
        The speedup used in the conforming run.
    misses_at_s_min:
        Deadline misses observed at ``s >= s_min`` (must be 0).
    max_episode:
        Longest observed HI-mode episode (must be ``<= delta_r``).
    episodes:
        Number of HI-mode episodes observed.
    miss_below_s_min:
        True when the stress run below ``s_min`` produced a miss
        (a tightness witness; may legitimately be False).
    """

    s_min: float
    delta_r: float
    simulated_speedup: float
    misses_at_s_min: int
    max_episode: float
    episodes: int
    miss_below_s_min: Optional[bool]

    @property
    def bounds_hold(self) -> bool:
        """Sufficiency + soundness (the hard guarantees)."""
        return self.misses_at_s_min == 0 and self.max_episode <= self.delta_r + 1e-6


def _worst_case_source() -> SynchronousWorstCaseSource:
    return SynchronousWorstCaseSource(OverrunModel(first_job_overruns=True, probability=1.0))


def validate_bounds(
    taskset: TaskSet,
    *,
    speedup: Optional[float] = None,
    horizon: Optional[float] = None,
    check_below: bool = True,
    slack: float = 1e-9,
) -> ValidationReport:
    """Run the conforming and stress simulations against the bounds.

    Parameters
    ----------
    taskset:
        Fully-configured task set (preparation/degradation applied).
    speedup:
        HI-mode speed for the conforming run; defaults to
        ``max(s_min, 1)`` rounded up by ``slack``.
    horizon:
        Simulation span; defaults to 20 of the largest LO periods.
    check_below:
        Also run at ``0.9 * s_min`` hunting for a miss witness (skipped
        when ``s_min <= 0`` or infinite).
    """
    s_res = min_speedup(taskset)
    if not math.isfinite(s_res.s_min):
        raise ValueError("task set needs infinite speedup; nothing to simulate")
    s = speedup if speedup is not None else max(s_res.s_min * (1.0 + slack), 1e-6)
    if s < s_res.s_min:
        raise ValueError(f"speedup {s} below s_min {s_res.s_min}")
    reset = resetting_time(taskset, s)
    if horizon is None:
        horizon = 20.0 * max(t.t_lo for t in taskset)

    config = SimConfig(speedup=s, horizon=horizon)
    result = simulate(taskset, config, _worst_case_source())

    miss_below: Optional[bool] = None
    if check_below and s_res.s_min > 0.05:
        stress_s = 0.9 * s_res.s_min
        stress = simulate(
            taskset, SimConfig(speedup=stress_s, horizon=horizon), _worst_case_source()
        )
        miss_below = stress.miss_count > 0

    return ValidationReport(
        s_min=s_res.s_min,
        delta_r=reset.delta_r,
        simulated_speedup=s,
        misses_at_s_min=result.miss_count,
        max_episode=result.max_episode_length,
        episodes=result.mode_switch_count,
        miss_below_s_min=miss_below,
    )


@dataclass(frozen=True)
class FaultValidationReport:
    """Outcome of :func:`validate_under_faults` for one configuration.

    The analytic bounds (``s_min``, ``delta_r``) are computed for the
    *fault-free* platform; the simulation runs the same adversarial
    workload through the fault layer, so comparing the two answers
    "which guarantees survive this fault class?".

    Attributes
    ----------
    s_min / delta_r / simulated_speedup:
        As in :class:`ValidationReport` (fault-free analysis values).
    hi_misses / lo_misses:
        Observed deadline misses split by criticality.
    max_episode:
        Longest observed HI-mode episode (compare against ``delta_r``).
    episodes:
        Number of HI-mode episodes observed.
    highest_rung:
        Deepest degradation-ladder rung the policy manager needed.
    speed_deficit:
        Requested-minus-delivered boost work (0 on a healthy platform).
    fault_event_count:
        Actuation/detection fault occurrences recorded by the injector.
    """

    s_min: float
    delta_r: float
    simulated_speedup: float
    hi_misses: int
    lo_misses: int
    max_episode: float
    episodes: int
    highest_rung: Rung
    speed_deficit: float
    fault_event_count: int

    @property
    def hi_guarantee_holds(self) -> bool:
        """No HI deadline missed despite the faults."""
        return self.hi_misses == 0

    @property
    def resetting_holds(self) -> bool:
        """Every episode closed within the fault-free ``Delta_R``."""
        return self.max_episode <= self.delta_r + 1e-6

    @property
    def bounds_hold(self) -> bool:
        """Both paper guarantees survived the injected faults."""
        return self.hi_guarantee_holds and self.resetting_holds


def validate_under_faults(
    taskset: TaskSet,
    *,
    fault: Optional[FaultConfig] = None,
    degradation: Optional[DegradationPolicy] = None,
    speedup: Optional[float] = None,
    horizon: Optional[float] = None,
    slack: float = 1e-9,
) -> FaultValidationReport:
    """Adversarial-workload run through the fault layer vs the bounds.

    Defaults mirror :func:`validate_bounds` exactly, so with ``fault``
    and ``degradation`` both ``None`` (or an all-zero
    :class:`~repro.sim.faults.FaultConfig`) the verdict fields reproduce
    the fault-free validator verbatim — the fault layer is a strict
    no-op when disabled.
    """
    s_res = min_speedup(taskset)
    if not math.isfinite(s_res.s_min):
        raise ValueError("task set needs infinite speedup; nothing to simulate")
    s = speedup if speedup is not None else max(s_res.s_min * (1.0 + slack), 1e-6)
    reset = resetting_time(taskset, s)
    if horizon is None:
        horizon = 20.0 * max(t.t_lo for t in taskset)

    config = SimConfig(
        speedup=s, horizon=horizon, faults=fault, degradation=degradation
    )
    result = simulate(taskset, config, _worst_case_source())

    return FaultValidationReport(
        s_min=s_res.s_min,
        delta_r=reset.delta_r,
        simulated_speedup=s,
        hi_misses=result.hi_miss_count,
        lo_misses=result.lo_miss_count,
        max_episode=result.max_episode_length,
        episodes=result.mode_switch_count,
        highest_rung=result.highest_rung,
        speed_deficit=result.speed_deficit,
        fault_event_count=len(result.fault_events),
    )


def measure_resetting(taskset: TaskSet, s: float, horizon: Optional[float] = None) -> SimResult:
    """Run the adversarial scenario and return the raw result.

    The first HI-mode episode's length is the empirical counterpart of
    ``Delta_R`` (Figure 3 overlays both).
    """
    if horizon is None:
        horizon = 20.0 * max(t.t_lo for t in taskset)
    config = SimConfig(speedup=s, horizon=horizon)
    return simulate(taskset, config, _worst_case_source())
