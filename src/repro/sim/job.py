"""Runtime job instances tracked by the simulator."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.model.task import MCTask

_job_ids = itertools.count()


@dataclass
class Job:
    """One released job of a task.

    Attributes
    ----------
    task:
        The generating :class:`~repro.model.task.MCTask`.
    release:
        Absolute release time.
    exec_time:
        The job's *actual* execution requirement (drawn by the workload
        model; at most ``C(HI)`` for HI tasks, at most ``C(LO)`` for LO
        tasks per the Section-II assumption).
    abs_deadline:
        Absolute deadline used both for EDF priority and miss detection;
        updated by the scheduler at a mode switch (HI jobs move from
        their shortened LO-mode deadline to the real one, carry-over LO
        jobs to their degraded one).
    executed:
        Work completed so far (in nominal-speed time units).
    finish:
        Completion time (``None`` while pending).
    background:
        True for carry-over jobs of terminated LO tasks: they keep the
        processor busy (matching the ``ADB`` accounting) but carry no
        deadline and never preempt deadline-bearing work.
    wcet_faulty:
        True when the workload fault layer deliberately exceeds the
        declared ``C(HI)`` (WCET misestimation); suspends the
        construction-time demand validation for this job only.
    detection_missed:
        True when the fault layer missed this job's overrun-threshold
        crossing; the mode switch then triggers at its completion.
    """

    task: MCTask
    release: float
    exec_time: float
    abs_deadline: float
    executed: float = 0.0
    finish: Optional[float] = None
    background: bool = False
    killed: bool = False
    wcet_faulty: bool = False
    detection_missed: bool = False
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.exec_time <= 0.0:
            raise ValueError(f"job of {self.task.name}: exec_time must be positive")
        if not self.wcet_faulty and self.exec_time > self.task.c_hi + 1e-9:
            raise ValueError(
                f"job of {self.task.name}: exec_time {self.exec_time} exceeds C(HI)"
            )

    @property
    def remaining(self) -> float:
        """Outstanding work in nominal-speed time units."""
        return max(self.exec_time - self.executed, 0.0)

    @property
    def done(self) -> bool:
        """True once finished or killed."""
        return self.finish is not None or self.killed

    @property
    def overruns(self) -> bool:
        """True when the job's true demand exceeds its LO-level WCET."""
        return self.exec_time > self.task.c_lo + 1e-12

    @property
    def lo_budget_left(self) -> float:
        """Work left before the job crosses its LO WCET (inf if crossed)."""
        gap = self.task.c_lo - self.executed
        return gap if gap > 1e-12 else math.inf

    def response_time(self) -> Optional[float]:
        """Finish minus release (``None`` while pending/killed)."""
        if self.finish is None:
            return None
        return self.finish - self.release

    def missed(self) -> bool:
        """Deadline miss verdict (background jobs never miss)."""
        if self.background or self.killed:
            return False
        if self.finish is None:
            return False
        return self.finish > self.abs_deadline + 1e-9

    def __repr__(self) -> str:
        state = "done" if self.done else f"rem={self.remaining:.3g}"
        return (
            f"Job({self.task.name}#{self.job_id}, rel={self.release:.3g}, "
            f"dl={self.abs_deadline:.3g}, {state})"
        )
