"""One module per paper table/figure (see DESIGN.md Section 4).

Every experiment module exposes a ``run(...)`` function returning plain
data structures plus a ``render(...)`` helper that prints the series the
paper's table/figure reports.  The benchmarks under ``benchmarks/``
drive these with paper-scale parameters; the experiment functions accept
smaller counts for quick runs and tests.
"""

from repro.experiments import common
from repro.experiments.table1 import table1_taskset, table1_degraded_taskset

__all__ = ["common", "table1_taskset", "table1_degraded_taskset"]
