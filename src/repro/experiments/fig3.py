"""Figure 3 / Example 2: service resetting time under processor speedup.

* (a) arrived-demand curves ``sum ADB_HI`` against supply lines
  ``s * Delta`` for the Table-I set without degradation — the first
  crossing is ``Delta_R`` (= 6 at s = 2).
* (b) the parametric trend ``Delta_R`` vs ``s``, with and without
  Example 1's service degradation: higher speedup resolves the overload
  faster, degradation shrinks it further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import api
from repro.experiments import common
from repro.experiments.table1 import table1_degraded_taskset, table1_taskset


@dataclass(frozen=True)
class Fig3aCurve:
    """Arrived demand vs one supply line (one choice of s)."""

    s: float
    deltas: np.ndarray
    demand: np.ndarray
    delta_r: float


@dataclass(frozen=True)
class Fig3bSeries:
    """Delta_R across speedups for one configuration."""

    name: str
    speedups: np.ndarray
    delta_r: np.ndarray


def run_a(
    speedups: Sequence[float] = (4.0 / 3.0, 2.0),
    horizon: float = 20.0,
    samples: int = 201,
) -> List[Fig3aCurve]:
    """Panel (a): ADB curves and resetting points, no degradation."""
    taskset = table1_taskset()
    deltas = np.linspace(0.0, horizon, samples)
    demand = api.demand_curve(taskset, deltas, kind="adb_hi")
    curves = []
    for s in speedups:
        dr = api.resetting_time(taskset, s).delta_r
        curves.append(Fig3aCurve(s=s, deltas=deltas, demand=demand, delta_r=dr))
    return curves


def run_b(
    s_lo: float = 1.0,
    s_hi: float = 4.0,
    points: int = 31,
) -> List[Fig3bSeries]:
    """Panel (b): Delta_R vs s, with and without degradation."""
    speedups = np.linspace(s_lo, s_hi, points)
    series = []
    for name, taskset in (
        ("no degradation", table1_taskset()),
        ("with degradation", table1_degraded_taskset()),
    ):
        drs = np.asarray(
            [api.resetting_time(taskset, float(s)).delta_r for s in speedups]
        )
        series.append(Fig3bSeries(name=name, speedups=speedups, delta_r=drs))
    return series


def render() -> str:
    """Figure 3 as text: resetting points and the Delta_R(s) trend."""
    out = ["Figure 3a: resetting time from ADB/supply crossing (no degradation)"]
    for curve in run_a():
        out.append(f"  s = {curve.s:.6g}: Delta_R = {curve.delta_r:.6g}")
    out.append("")
    out.append("Figure 3b: Delta_R vs speedup")
    series = run_b()
    xs = series[0].speedups
    cols: Dict[str, np.ndarray] = {s.name: s.delta_r for s in series}
    out.append(common.series_table("s", xs, cols))
    for s in series:
        out.append(common.ascii_curve(s.speedups, s.delta_r, title=f"Delta_R vs s ({s.name})"))
    return "\n".join(out)
