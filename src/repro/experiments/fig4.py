"""Figure 4 / Examples 3-4: closed-form trade-offs (Lemmas 6 and 7).

The Table-I tasks are re-parameterized per Eqs. (13)/(14) (implicit
deadlines, common knobs ``x`` and ``y``), then:

* (a) the Lemma-6 speedup bound is swept over ``(x, y)`` — it decreases
  with more overrun preparation (smaller ``x``) and with more service
  degradation (larger ``y``);
* (b) the Lemma-7 resetting bound is swept over ``s`` for several
  values of the minimum speedup ``s_min`` (i.e. HI-mode load):
  ``Delta_R`` grows as ``s`` approaches ``s_min`` and diverges at it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import api
from repro.experiments import common
from repro.experiments.table1 import table1_taskset
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class Fig4aGrid:
    """Lemma-6 bound over the (x, y) grid."""

    xs: np.ndarray
    ys: np.ndarray
    s_min: np.ndarray  # shape (len(xs), len(ys))


@dataclass(frozen=True)
class Fig4bSeries:
    """Lemma-7 bound vs s for one artificial s_min (HI-mode load)."""

    s_min: float
    speedups: np.ndarray
    delta_r: np.ndarray


def run_a(
    taskset: TaskSet = None,
    xs: Sequence[float] = None,
    ys: Sequence[float] = None,
) -> Fig4aGrid:
    """Sweep the Lemma-6 bound over overrun preparation and degradation."""
    taskset = taskset or table1_taskset()
    xs = np.asarray(xs if xs is not None else np.linspace(0.3, 0.9, 13))
    ys = np.asarray(ys if ys is not None else np.linspace(1.0, 4.0, 13))
    grid = np.empty((xs.size, ys.size))
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            grid[i, j] = api.closed_form_speedup(taskset, float(x), float(y))
    return Fig4aGrid(xs=xs, ys=ys, s_min=grid)


def run_b(
    s_mins: Sequence[float] = (0.8, 1.0, 1.2, 1.5),
    s_max: float = 4.0,
    points: int = 49,
    total_c_hi: float = None,
) -> List[Fig4bSeries]:
    """Lemma 7: ``Delta_R = sum C(HI) / (s - s_min)`` for several loads.

    ``s_mins`` are treated as given HI-mode loads (the paper "artificially
    increases s_min" to illustrate the trend); ``total_c_hi`` defaults to
    the Table-I value.
    """
    if total_c_hi is None:
        total_c_hi = sum(t.c_hi for t in table1_taskset())
    series = []
    for s_min in s_mins:
        speedups = np.linspace(s_min + 0.05, s_max, points)
        delta_r = total_c_hi / (speedups - s_min)
        series.append(Fig4bSeries(s_min=s_min, speedups=speedups, delta_r=delta_r))
    return series


def render() -> str:
    """Figure 4 as text: the (x, y) grid and the Delta_R(s) family."""
    grid = run_a()
    out = ["Figure 4a: Lemma-6 speedup bound over (x, y)"]
    out.append(common.contour_grid("x", "y", grid.xs, grid.ys, grid.s_min))
    out.append("")
    out.append("Figure 4b: Lemma-7 resetting bound vs s")
    series = run_b()
    xs = series[-1].speedups
    cols: Dict[str, np.ndarray] = {}
    for s in series:
        resampled = np.interp(xs, s.speedups, s.delta_r, left=np.inf)
        cols[f"s_min={s.s_min:g}"] = resampled
    out.append(common.series_table("s", xs[:: max(1, len(xs) // 16)], {
        k: v[:: max(1, len(xs) // 16)] for k, v in cols.items()
    }))
    return "\n".join(out)
