"""Figure 6: extensive simulations on synthesized task sets.

For each system-utilization point ``U_bound`` the paper generates 500
random task sets (generator of [4], Figure-6 caption parameters), sets
``x`` to the minimum guaranteeing LO-mode schedulability, applies the
degradation ``y``, and reports:

* (a) the distribution (box-whisker) of the Theorem-2 minimum speedup
  ``s_min``, for ``y = 2``; plus the share of sets schedulable without
  speedup (``s_min <= 1``) vs with ``s_min <= 1.9``;
* (b) the median ``s_min`` across ``U_bound`` for several ``y``;
* (c) the distribution of the Corollary-5 resetting time at ``s = 3``,
  ``y = 2`` (milliseconds);
* (d) the median resetting time for several ``(s, y)`` combinations.

The per-set evaluation goes through the batch pipeline
(:func:`repro.api.analyze_many`): generation stays sequential (it
consumes the seeded RNG), analysis fans out over ``jobs`` worker
processes with optional result caching — the populations are shared
between panels (a)/(c) and the (b)/(d) sweep, so a cache turns the
second pass into pure lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import api
from repro.experiments import common
from repro.generator.taskgen import GeneratorConfig, generate_taskset
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class PointSample:
    """Per-task-set outcome at one utilization point."""

    s_min: float
    delta_r: float
    lo_feasible: bool


@dataclass
class Fig6Point:
    """All samples collected at one ``U_bound``."""

    u_bound: float
    y: float
    s_for_reset: float
    samples: List[PointSample] = field(default_factory=list)

    @property
    def s_min_values(self) -> List[float]:
        return [s.s_min for s in self.samples if s.lo_feasible]

    @property
    def delta_r_values(self) -> List[float]:
        return [s.delta_r for s in self.samples if s.lo_feasible]

    def schedulable_fraction(self, s: float) -> float:
        """Share of sets feasible in both modes at speedup ``s``."""
        if not self.samples:
            return 0.0
        ok = sum(
            1 for x in self.samples if x.lo_feasible and x.s_min <= s * (1 + 1e-9)
        )
        return ok / len(self.samples)

    def s_min_stats(self) -> common.BoxStats:
        return common.BoxStats.of(self.s_min_values)

    def delta_r_stats(self) -> common.BoxStats:
        return common.BoxStats.of(self.delta_r_values)


def _request(
    taskset: TaskSet,
    y: float,
    s_for_reset: float,
    x: Optional[float] = None,
    method: str = "exact",
) -> api.AnalysisRequest:
    """The Figure-6 evaluation of one set as a pipeline request.

    ``resetting="always"`` reproduces the figure's convention: the
    resetting time is reported whenever ``s_min`` is finite, not only
    when the set is feasible at ``s_for_reset``.
    """
    if x is None:
        return api.AnalysisRequest(
            taskset=taskset, speedup=s_for_reset, auto_x=method, y=y,
            resetting="always",
        )
    return api.AnalysisRequest(
        taskset=taskset, speedup=s_for_reset, x=x, y=y, resetting="always"
    )


def _sample(report: api.AnalysisReport) -> PointSample:
    return PointSample(report.s_min, report.delta_r, bool(report.lo_ok))


def evaluate_taskset(
    taskset: TaskSet,
    y: float,
    s_for_reset: float,
    x: float = None,
    method: str = "exact",
) -> PointSample:
    """Pipeline for one set: minimal x, apply (x, y), Theorem 2, Corollary 5.

    ``x`` may be precomputed (the sweep reuses it across (s, y) combos);
    ``method`` selects the x-tuning of
    :func:`repro.api.min_preparation_factor`.
    """
    return _sample(api.evaluate_request(_request(taskset, y, s_for_reset, x, method)))


def run(
    u_bounds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    sets_per_point: int = 500,
    y: float = 2.0,
    s_for_reset: float = 3.0,
    seed: int = 2015,
    config: GeneratorConfig = GeneratorConfig(),
    jobs: int = 1,
    runner: Optional[api.BatchRunner] = None,
    population: bool = False,
) -> List[Fig6Point]:
    """Panels (a) and (c): distributions at each utilization point.

    ``jobs`` fans the per-set analyses over worker processes (results are
    identical to the serial run); pass a configured ``runner`` instead
    for caching or checkpoint/resume.  ``population=True`` groups the
    per-set analyses into population-batched kernel evaluations — much
    faster in this small-task-set regime, with byte-identical samples.
    """
    points: List[Fig6Point] = []
    owners: List[Fig6Point] = []
    requests: List[api.AnalysisRequest] = []
    for k, u in enumerate(u_bounds):
        rng = np.random.default_rng(seed + 1000 * k)
        point = Fig6Point(u_bound=u, y=y, s_for_reset=s_for_reset)
        points.append(point)
        for i in range(sets_per_point):
            ts = generate_taskset(u, rng, config, name=f"u{u:g}_{i}")
            owners.append(point)
            requests.append(_request(ts, y, s_for_reset))
    reports = api.analyze_many(
        requests, jobs=jobs, runner=runner, population=population
    )
    for point, report in zip(owners, reports):
        point.samples.append(_sample(report))
    return points


def run_sweep(
    u_bounds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    ys: Sequence[float] = (1.5, 2.0, 3.0),
    s_values: Sequence[float] = (2.0, 3.0),
    sets_per_point: int = 200,
    seed: int = 2015,
    config: GeneratorConfig = GeneratorConfig(),
    jobs: int = 1,
    runner: Optional[api.BatchRunner] = None,
    population: bool = False,
) -> Dict[Tuple[float, float], List[Fig6Point]]:
    """Panels (b) and (d): medians across ``(s, y)`` combinations.

    Returns ``{(s, y): [Fig6Point per u_bound]}``; the same generated
    populations (and the same tuned ``x``) are reused across
    combinations for paired comparisons.  ``population=True`` batches
    both the exact-``x`` tuning and the per-set analyses across whole
    populations (byte-identical results).
    """
    populations: List[List[TaskSet]] = []
    xs: List[List[Optional[float]]] = []
    for k, u in enumerate(u_bounds):
        rng = np.random.default_rng(seed + 1000 * k)
        tasksets = [
            generate_taskset(u, rng, config, name=f"u{u:g}_{i}")
            for i in range(sets_per_point)
        ]
        populations.append(tasksets)
        if population:
            xs.append(api.min_preparation_factor_many(tasksets, method="exact"))
        else:
            xs.append(
                [api.min_preparation_factor(ts, method="exact") for ts in tasksets]
            )
    out: Dict[Tuple[float, float], List[Fig6Point]] = {}
    owners: List[Fig6Point] = []
    requests: List[api.AnalysisRequest] = []
    for s in s_values:
        for y in ys:
            series = []
            for u, tasksets, x_list in zip(u_bounds, populations, xs):
                point = Fig6Point(u_bound=u, y=y, s_for_reset=s)
                series.append(point)
                for ts, x in zip(tasksets, x_list):
                    owners.append(point)
                    requests.append(_request(ts, y, s, x=x))
            out[(s, y)] = series
    reports = api.analyze_many(
        requests, jobs=jobs, runner=runner, population=population
    )
    for point, report in zip(owners, reports):
        point.samples.append(_sample(report))
    return out


def render(points: List[Fig6Point], sweep: Dict[Tuple[float, float], List[Fig6Point]]) -> str:
    """All four panels as text tables."""
    out = [f"Figure 6a: s_min distribution (y = {points[0].y:g})"]
    for p in points:
        out.append(f"  U={p.u_bound:<5g} {p.s_min_stats().row()}")
    out.append("")
    out.append("  Schedulable fraction at U = max point:")
    last = points[-1]
    for s in (1.0, 1.9):
        out.append(
            f"    s_min <= {s:<4g}: {100 * last.schedulable_fraction(s):.1f}% "
            f"(paper at U=0.9: ~25% for s=1, ~75% for s=1.9)"
        )
    out.append("")
    out.append(
        f"Figure 6c: Delta_R distribution in ms (y = {points[0].y:g}, "
        f"s = {points[0].s_for_reset:g})"
    )
    for p in points:
        out.append(f"  U={p.u_bound:<5g} {p.delta_r_stats().row()}")
    out.append("")
    if sweep:
        us = [p.u_bound for p in next(iter(sweep.values()))]
        out.append("Figure 6b: median s_min vs U_bound per y")
        cols = {}
        for (s, y), series in sweep.items():
            cols[f"y={y:g}"] = [p.s_min_stats().median for p in series]
        # s does not affect s_min; deduplicate columns by name.
        out.append(common.series_table("U", us, dict(sorted(cols.items()))))
        out.append("")
        out.append("Figure 6d: median Delta_R (ms) vs U_bound per (s, y)")
        cols = {
            f"s={s:g},y={y:g}": [p.delta_r_stats().median for p in series]
            for (s, y), series in sorted(sweep.items())
        }
        out.append(common.series_table("U", us, cols))
    return "\n".join(out)
