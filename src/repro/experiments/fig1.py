"""Figure 1: minimum speedup and HI-mode demand bound functions.

Two panels over the Table-I example:

* (a) no service degradation — the total ``DBF_HI`` curve against the
  supply line ``s_min * Delta`` with ``s_min = 4/3``;
* (b) with Example 1's degradation — supply line at ``s_min = 0.875``
  (the system may even *slow down* in HI mode).

``run`` returns the sampled curves; ``render`` prints the series plus
the computed minima, which is the figure's content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import api
from repro.experiments import common
from repro.experiments.table1 import table1_degraded_taskset, table1_taskset
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class Fig1Panel:
    """One panel: demand curve, supply line and the speedup minimum."""

    name: str
    deltas: np.ndarray
    demand: np.ndarray
    s_min: float
    critical_delta: float

    @property
    def supply(self) -> np.ndarray:
        return self.s_min * self.deltas


def _panel(taskset: TaskSet, name: str, horizon: float, samples: int) -> Fig1Panel:
    result = api.min_speedup(taskset)
    deltas = np.linspace(0.0, horizon, samples)
    demand = api.demand_curve(taskset, deltas, kind="dbf_hi")
    return Fig1Panel(
        name=name,
        deltas=deltas,
        demand=demand,
        s_min=result.s_min,
        critical_delta=result.critical_delta or 0.0,
    )


def run(horizon: float = 40.0, samples: int = 401) -> List[Fig1Panel]:
    """Compute both Figure-1 panels on the Table-I example."""
    return [
        _panel(table1_taskset(), "no degradation", horizon, samples),
        _panel(table1_degraded_taskset(), "with degradation", horizon, samples),
    ]


def render(horizon: float = 40.0) -> str:
    """Figure 1 as text: s_min values and demand-vs-supply samples."""
    panels = run(horizon=horizon, samples=int(horizon) + 1)
    out = []
    for panel in panels:
        out.append(
            f"Figure 1 ({panel.name}): s_min = {panel.s_min:.6g} "
            f"attained at Delta = {panel.critical_delta:g}"
        )
        cols = {"DBF_HI": panel.demand, "s_min*Delta": panel.supply}
        step = max(1, len(panel.deltas) // 20)
        xs = panel.deltas[::step]
        out.append(
            common.series_table(
                "Delta", xs, {k: v[::step] for k, v in cols.items()}
            )
        )
        out.append(
            common.ascii_curve(
                panel.deltas, panel.demand - panel.supply,
                title=f"demand minus supply ({panel.name}; <= 0 means schedulable)",
            )
        )
        out.append("")
    return "\n".join(out)
