"""Figure M: the multiprocessor speedup frontier (extension).

The paper's evaluation is single-processor.  This experiment family
maps the *partitioned multiprocessor* trade space it implies, following
the comparison framed by the related work: per point it generates
random workloads and reports which of three schemes can schedule them —

* **temporary speedup** — partition under the paper's per-core
  admission (LO-mode feasible and Theorem-2 ``s_min`` within the
  per-core ``speedup_cap``), full LO service preserved;
* **degraded quality** — partition under EDF-VD-with-degraded-quality
  (Liu et al.): no speedup, LO tasks keep only ``1/y`` of their service
  after a mode switch;
* **fluid** — the dual-rate fluid reference (MC-Fluid family): no
  partitioning losses, full LO service; an upper frontier.

The map is a schedulability-region grid over per-core utilization
``U`` x core count ``m`` x speedup cap ``s``: each workload merges
``m`` independently generated per-core sets at ``U`` (the generator
dimensions sets to a single core, so multi-core load is built by
union), and the acceptance fraction per cell is the region height.

The speedup scheme is evaluated on the ``x``-prepared set
(:func:`repro.model.transform.apply_uniform_scaling` with a fixed
preparation factor — the merged set has total utilization above 1, so
the single-processor minimal-``x`` tuning does not apply); the
baselines see the raw set, since deadline preparation is the speedup
protocol's own knob.

Every cell routes through the batch/population pipeline
(:func:`repro.api.analyze_many` over multiproc
:class:`~repro.pipeline.request.AnalysisRequest` items), so caching,
checkpoints, chaos hardening and the ``/metrics`` counters
(``kernels.admission_trials``) all apply, and results are byte-identical
across ``--jobs`` counts.  Workloads are generated once per ``(U, m)``
and shared across the cap sweep (paired samples; with a cache the
baseline verdicts per set are computed once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import api
from repro.experiments import common
from repro.generator.taskgen import GeneratorConfig, generate_taskset
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class CellSample:
    """Per-workload verdicts of the three schemes."""

    speedup_ok: bool
    degraded_ok: bool
    fluid_ok: bool
    max_s_min: Optional[float]


@dataclass
class FigMCell:
    """All samples at one ``(U, m, cap)`` grid point."""

    u_bound: float
    cores: int
    speedup_cap: float
    samples: List[CellSample] = field(default_factory=list)

    def _fraction(self, key: str) -> float:
        if not self.samples:
            return 0.0
        return sum(
            1 for s in self.samples if getattr(s, key)
        ) / len(self.samples)

    @property
    def speedup_fraction(self) -> float:
        return self._fraction("speedup_ok")

    @property
    def degraded_fraction(self) -> float:
        return self._fraction("degraded_ok")

    @property
    def fluid_fraction(self) -> float:
        return self._fraction("fluid_ok")


def merged_workload(
    u_bound: float,
    cores: int,
    rng: np.random.Generator,
    config: GeneratorConfig,
    name: str,
) -> TaskSet:
    """One ``cores``-processor workload: the union of per-core sets.

    The generator dimensions a set to a single core (``u_bound <= 1``),
    so an ``m``-core workload at per-core utilization ``U`` is ``m``
    independently drawn sets merged under distinct task names.
    """
    per_core = [
        generate_taskset(u_bound, rng, config, name=f"{name}c{k}")
        for k in range(cores)
    ]
    return TaskSet(
        [task for ts in per_core for task in ts], name=name
    )


def _sample(report: api.AnalysisReport) -> CellSample:
    info: Dict[str, Any] = report.multiproc or {}
    max_s = info.get("max_s_min")
    return CellSample(
        speedup_ok=bool(info.get("speedup_ok")),
        degraded_ok=bool(info.get("degraded_ok")),
        fluid_ok=bool(info.get("fluid_ok")),
        max_s_min=max_s if isinstance(max_s, float) else None,
    )


def run(
    u_bounds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    core_counts: Sequence[int] = (2, 4, 8),
    speedup_caps: Sequence[float] = (1.5, 2.0, 3.0),
    sets_per_point: int = 100,
    x_prep: float = 0.5,
    degraded_y: float = 2.0,
    heuristic: str = "worst_fit",
    seed: int = 2015,
    config: GeneratorConfig = GeneratorConfig(),
    jobs: int = 1,
    runner: Optional[api.BatchRunner] = None,
    population: bool = False,
) -> List[FigMCell]:
    """Evaluate the full region grid.

    Returns one :class:`FigMCell` per ``(U, m, cap)`` point, in
    row-major (``U`` outer, ``m``, then ``cap``) order.  Generation is
    sequential (it consumes the seeded RNG); the analyses fan out over
    ``jobs`` worker processes with byte-identical results.
    ``population=True`` groups any co-batched uniprocessor requests;
    multiproc items batch internally either way.
    """
    cells: List[FigMCell] = []
    owners: List[FigMCell] = []
    requests: List[api.AnalysisRequest] = []
    for k, u in enumerate(u_bounds):
        for m in core_counts:
            rng = np.random.default_rng(seed + 1000 * k + m)
            workloads = [
                merged_workload(u, m, rng, config, name=f"u{u:g}m{m}_{i}")
                for i in range(sets_per_point)
            ]
            point_cells = [
                FigMCell(u_bound=u, cores=m, speedup_cap=cap)
                for cap in speedup_caps
            ]
            cells.extend(point_cells)
            for workload in workloads:
                for cell in point_cells:
                    owners.append(cell)
                    requests.append(
                        api.AnalysisRequest(
                            taskset=workload,
                            cores=m,
                            speedup_cap=cell.speedup_cap,
                            heuristic=heuristic,
                            degraded_y=degraded_y,
                            x=x_prep,
                        )
                    )
    reports = api.analyze_many(
        requests, jobs=jobs, runner=runner, population=population
    )
    for cell, report in zip(owners, reports):
        cell.samples.append(_sample(report))
    return cells


def render(cells: List[FigMCell]) -> str:
    """The region maps as one table per core count.

    Rows are per-core utilization points; columns are the acceptance
    fractions of the speedup scheme at each cap, then the degraded and
    fluid baselines (cap-independent — their column repeats the shared
    per-``(U, m)`` verdicts).
    """
    if not cells:
        return "Figure M: (no cells)"
    core_counts = sorted({c.cores for c in cells})
    caps = sorted({c.speedup_cap for c in cells})
    us = sorted({c.u_bound for c in cells})
    by_key = {(c.u_bound, c.cores, c.speedup_cap): c for c in cells}
    out = [
        "Figure M: partitioned multiprocessor schedulability regions",
        "(fraction of workloads schedulable; speedup scheme keeps full LO "
        "service, 'degraded' is EDF-VD with degraded quality, 'fluid' is "
        "the dual-rate fluid reference)",
    ]
    for m in core_counts:
        out.append("")
        out.append(f"m = {m} cores (per-core utilization U)")
        columns: Dict[str, List[float]] = {}
        for cap in caps:
            columns[f"spd@{cap:g}"] = [
                by_key[(u, m, cap)].speedup_fraction for u in us
            ]
        columns["degraded"] = [
            by_key[(u, m, caps[0])].degraded_fraction for u in us
        ]
        columns["fluid"] = [
            by_key[(u, m, caps[0])].fluid_fraction for u in us
        ]
        out.append(common.series_table("U", list(us), columns))
    return "\n".join(out)
