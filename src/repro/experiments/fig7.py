"""Figure 7: schedulability regions under temporary processor speedup.

Grid sweep over ``(U_HI, U_LO)`` (per-criticality utilizations of the
Figure-7 caption), with LO tasks *terminated* in HI mode, ``gamma = 10``,
``s = 2`` and the temporariness constraint ``Delta_R <= 5 s``.  For each
grid point many task sets are generated in a ``+-0.025`` neighbourhood
and the fraction accepted is reported; the no-speedup region — classic
EDF-VD with termination on a unit-speed processor, the prior state of
the art the paper contrasts against — is computed alongside.

Acceptance at speedup ``s``:

1. LO mode EDF-feasible at nominal speed with the minimal ``x``;
2. Theorem-2 minimum speedup ``<= s``;
3. Corollary-5 resetting time at ``s`` within the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.resetting import resetting_time
from repro.analysis.speedup import min_speedup
from repro.analysis.tuning import min_preparation_factor
from repro.baselines.edf_vd import edf_vd_schedulable
from repro.experiments import common
from repro.generator.taskgen import FIG7_CONFIG, GeneratorConfig, generate_taskset_with_targets
from repro.model.transform import apply_uniform_scaling


@dataclass(frozen=True)
class Fig7Grid:
    """Schedulable fractions over the (U_HI, U_LO) grid."""

    u_hi: np.ndarray
    u_lo: np.ndarray
    with_speedup: np.ndarray     # fraction accepted at s, Delta_R budget
    without_speedup: np.ndarray  # fraction accepted by classic EDF-VD (s = 1)
    s: float
    reset_budget: float


def accept(
    taskset,
    s: float,
    reset_budget: float,
    x: float = None,
    method: str = "exact",
) -> bool:
    """Apply the three acceptance criteria to one terminated-LO set.

    ``x`` may be precomputed and shared across acceptance evaluations of
    the same set at different speedups.
    """
    if x is None:
        x = min_preparation_factor(taskset, method=method)
    if x is None:
        return False
    if taskset.hi_tasks and x >= 1.0:
        return False
    configured = apply_uniform_scaling(
        taskset, min(x, 1.0 - 1e-9) if taskset.hi_tasks else 1.0, math.inf
    )
    s_min = min_speedup(configured).s_min
    if s_min > s * (1.0 + 1e-9):
        return False
    if math.isinf(reset_budget):
        return True
    return resetting_time(configured, s).delta_r <= reset_budget * (1.0 + 1e-9)


def run(
    u_points: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85),
    sets_per_point: int = 100,
    s: float = 2.0,
    reset_budget: float = 5000.0,
    seed: int = 715,
    config: GeneratorConfig = FIG7_CONFIG,
    jitter: float = 0.025,
) -> Fig7Grid:
    """Sweep the grid; ``reset_budget`` is in ms (5 s = 5000 ms)."""
    u_hi = np.asarray(u_points, dtype=float)
    u_lo = np.asarray(u_points, dtype=float)
    with_speedup = np.zeros((u_hi.size, u_lo.size))
    without = np.zeros_like(with_speedup)
    for i, uh in enumerate(u_hi):
        for j, ul in enumerate(u_lo):
            rng = np.random.default_rng(seed + 97 * i + 13 * j)
            ok_s = ok_1 = 0
            for k in range(sets_per_point):
                ts = generate_taskset_with_targets(
                    float(uh), float(ul), rng, config,
                    name=f"g{i}_{j}_{k}", jitter=jitter,
                )
                if accept(ts, s, reset_budget):
                    ok_s += 1
                if edf_vd_schedulable(ts).schedulable:
                    ok_1 += 1
            with_speedup[i, j] = ok_s / sets_per_point
            without[i, j] = ok_1 / sets_per_point
    return Fig7Grid(
        u_hi=u_hi,
        u_lo=u_lo,
        with_speedup=with_speedup,
        without_speedup=without,
        s=s,
        reset_budget=reset_budget,
    )


def render(grid: Fig7Grid) -> str:
    """Both heat maps plus the paper's headline cell."""
    out = [
        f"Figure 7: schedulable fraction, s = {grid.s:g}, "
        f"Delta_R <= {grid.reset_budget:g} ms, LO terminated, gamma pinned"
    ]
    out.append("")
    out.append("With temporary speedup:")
    out.append(
        common.contour_grid("U_HI", "U_LO", grid.u_hi, grid.u_lo, grid.with_speedup)
    )
    out.append("")
    out.append("Without speedup (classic EDF-VD, s = 1):")
    out.append(
        common.contour_grid("U_HI", "U_LO", grid.u_hi, grid.u_lo, grid.without_speedup)
    )
    # Headline: ~90% schedulable at U_HI = U_LO = 0.85 with 2x speedup.
    i = int(np.argmin(np.abs(grid.u_hi - 0.85)))
    j = int(np.argmin(np.abs(grid.u_lo - 0.85)))
    out.append("")
    out.append(
        f"Headline cell (U_HI~{grid.u_hi[i]:g}, U_LO~{grid.u_lo[j]:g}): "
        f"{100 * grid.with_speedup[i, j]:.0f}% with speedup vs "
        f"{100 * grid.without_speedup[i, j]:.0f}% without (paper: ~90% with 2x)"
    )
    return "\n".join(out)
