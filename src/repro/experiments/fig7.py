"""Figure 7: schedulability regions under temporary processor speedup.

Grid sweep over ``(U_HI, U_LO)`` (per-criticality utilizations of the
Figure-7 caption), with LO tasks *terminated* in HI mode, ``gamma = 10``,
``s = 2`` and the temporariness constraint ``Delta_R <= 5 s``.  For each
grid point many task sets are generated in a ``+-0.025`` neighbourhood
and the fraction accepted is reported; the no-speedup region — classic
EDF-VD with termination on a unit-speed processor, the prior state of
the art the paper contrasts against — is computed alongside.

Acceptance at speedup ``s``:

1. LO mode EDF-feasible at nominal speed with the minimal ``x``;
2. Theorem-2 minimum speedup ``<= s``;
3. Corollary-5 resetting time at ``s`` within the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import api
from repro.baselines.edf_vd import edf_vd_schedulable
from repro.experiments import common
from repro.generator.taskgen import FIG7_CONFIG, GeneratorConfig, generate_taskset_with_targets


@dataclass(frozen=True)
class Fig7Grid:
    """Schedulable fractions over the (U_HI, U_LO) grid."""

    u_hi: np.ndarray
    u_lo: np.ndarray
    with_speedup: np.ndarray     # fraction accepted at s, Delta_R budget
    without_speedup: np.ndarray  # fraction accepted by classic EDF-VD (s = 1)
    s: float
    reset_budget: float


def _request(
    taskset,
    s: float,
    reset_budget: float,
    x: Optional[float] = None,
    method: str = "exact",
) -> api.AnalysisRequest:
    """The Figure-7 acceptance of one terminated-LO set as a request.

    An infinite budget skips the resetting-time computation entirely
    (acceptance is then decided by the speedup verdict alone).
    """
    budget = None if math.isinf(reset_budget) else reset_budget
    options = dict(
        taskset=taskset,
        speedup=s,
        reset_budget=budget,
        y=math.inf,
        resetting="never" if budget is None else "auto",
    )
    if x is None:
        options["auto_x"] = method
    else:
        options["x"] = x
    return api.AnalysisRequest(**options)


def _accepted(report: api.AnalysisReport) -> bool:
    if not report.lo_ok or not report.hi_ok:
        return False
    if report.reset_budget is None:
        return True
    return bool(report.within_budget)


def accept(
    taskset,
    s: float,
    reset_budget: float,
    x: float = None,
    method: str = "exact",
) -> bool:
    """Apply the three acceptance criteria to one terminated-LO set.

    ``x`` may be precomputed and shared across acceptance evaluations of
    the same set at different speedups.
    """
    return _accepted(api.evaluate_request(_request(taskset, s, reset_budget, x, method)))


def run(
    u_points: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85),
    sets_per_point: int = 100,
    s: float = 2.0,
    reset_budget: float = 5000.0,
    seed: int = 715,
    config: GeneratorConfig = FIG7_CONFIG,
    jitter: float = 0.025,
    jobs: int = 1,
    runner: Optional[api.BatchRunner] = None,
    population: bool = False,
) -> Fig7Grid:
    """Sweep the grid; ``reset_budget`` is in ms (5 s = 5000 ms).

    ``jobs`` fans the per-set acceptance analyses over worker processes
    (grid values are identical to the serial run); the EDF-VD baseline
    stays inline — it is cheap next to the speedup analysis.
    ``population=True`` groups the acceptance analyses into
    population-batched kernel evaluations (byte-identical grid).
    """
    u_hi = np.asarray(u_points, dtype=float)
    u_lo = np.asarray(u_points, dtype=float)
    with_speedup = np.zeros((u_hi.size, u_lo.size))
    without = np.zeros_like(with_speedup)
    cells: List[tuple] = []
    requests: List[api.AnalysisRequest] = []
    for i, uh in enumerate(u_hi):
        for j, ul in enumerate(u_lo):
            rng = np.random.default_rng(seed + 97 * i + 13 * j)
            ok_1 = 0
            for k in range(sets_per_point):
                ts = generate_taskset_with_targets(
                    float(uh), float(ul), rng, config,
                    name=f"g{i}_{j}_{k}", jitter=jitter,
                )
                cells.append((i, j))
                requests.append(_request(ts, s, reset_budget))
                if edf_vd_schedulable(ts).schedulable:
                    ok_1 += 1
            without[i, j] = ok_1 / sets_per_point
    reports = api.analyze_many(
        requests, jobs=jobs, runner=runner, population=population
    )
    accepted = np.zeros_like(with_speedup)
    for (i, j), report in zip(cells, reports):
        if _accepted(report):
            accepted[i, j] += 1
    with_speedup = accepted / sets_per_point
    return Fig7Grid(
        u_hi=u_hi,
        u_lo=u_lo,
        with_speedup=with_speedup,
        without_speedup=without,
        s=s,
        reset_budget=reset_budget,
    )


def render(grid: Fig7Grid) -> str:
    """Both heat maps plus the paper's headline cell."""
    out = [
        f"Figure 7: schedulable fraction, s = {grid.s:g}, "
        f"Delta_R <= {grid.reset_budget:g} ms, LO terminated, gamma pinned"
    ]
    out.append("")
    out.append("With temporary speedup:")
    out.append(
        common.contour_grid("U_HI", "U_LO", grid.u_hi, grid.u_lo, grid.with_speedup)
    )
    out.append("")
    out.append("Without speedup (classic EDF-VD, s = 1):")
    out.append(
        common.contour_grid("U_HI", "U_LO", grid.u_hi, grid.u_lo, grid.without_speedup)
    )
    # Headline: ~90% schedulable at U_HI = U_LO = 0.85 with 2x speedup.
    i = int(np.argmin(np.abs(grid.u_hi - 0.85)))
    j = int(np.argmin(np.abs(grid.u_lo - 0.85)))
    out.append("")
    out.append(
        f"Headline cell (U_HI~{grid.u_hi[i]:g}, U_LO~{grid.u_lo[j]:g}): "
        f"{100 * grid.with_speedup[i, j]:.0f}% with speedup vs "
        f"{100 * grid.without_speedup[i, j]:.0f}% without (paper: ~90% with 2x)"
    )
    return "\n".join(out)
