"""Table I: the running example task set (Examples 1-4).

The numeric cells of Table I were lost in the available transcription of
the paper (see DESIGN.md Section 2).  The set below was *reconstructed
by constrained search* over small-integer parameters so that every
derived number the paper publishes for it holds exactly:

* Example 1: ``s_min = 4/3`` with tau2 keeping its original service;
* Example 1: ``s_min = 0.875`` when tau2 is degraded to
  ``D2(HI) = 15, T2(HI) = 20``;
* Example 2: ``Delta_R = 6`` at ``s = 2`` (no degradation).

Any task set reproducing all three outputs is observationally
equivalent for the purposes of Figures 1, 3 and 4, which only exercise
Eqs. (4)-(12) on this example.
"""

from __future__ import annotations

from repro.model.task import MCTask
from repro.model.taskset import TaskSet

#: Degraded HI-mode service of tau2 quoted in Example 1.
TAU2_DEGRADED_DEADLINE = 15.0
TAU2_DEGRADED_PERIOD = 20.0

#: Published outputs the reconstruction is pinned to.
EXPECTED_S_MIN = 4.0 / 3.0
EXPECTED_S_MIN_DEGRADED = 0.875
EXPECTED_DELTA_R_AT_2 = 6.0


def table1_taskset() -> TaskSet:
    """The reconstructed Table-I set (tau2 with original service in HI).

    tau1 (HI): C(LO)=1, C(HI)=3, D(LO)=1, D(HI)=T=4;
    tau2 (LO): C=2, D=T=4.

    Besides the three pinned outputs, the reconstruction predicts the
    transcription-lost Example-2 value: ``Delta_R = 42.75`` at
    ``s = 4/3``.
    """
    tau1 = MCTask.hi("tau1", c_lo=1.0, c_hi=3.0, d_lo=1.0, d_hi=4.0, period=4.0)
    tau2 = MCTask.lo("tau2", c=2.0, d_lo=4.0, t_lo=4.0)
    return TaskSet([tau1, tau2], name="table1")


def table1_degraded_taskset() -> TaskSet:
    """Table I with tau2's Example-1 degraded HI-mode service."""
    base = table1_taskset()
    tau2 = base.by_name("tau2").with_degraded_service(
        d_hi=TAU2_DEGRADED_DEADLINE, t_hi=TAU2_DEGRADED_PERIOD
    )
    return TaskSet([base.by_name("tau1"), tau2], name="table1_degraded")


def render() -> str:
    """Print the reconstructed Table I."""
    lines = ["Table I (reconstructed; see DESIGN.md):", table1_taskset().table()]
    lines.append("")
    lines.append("Degraded variant (Example 1):")
    lines.append(table1_degraded_taskset().table())
    return "\n".join(lines)
