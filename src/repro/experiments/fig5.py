"""Figure 5: flight-management-system contours (Section VI-A).

* (a) minimum required HI-mode speedup over the ``(x, y)`` design grid
  (exact Theorem-2 computation on the transformed FMS set);
* (b) resetting time over the ``(s, gamma)`` grid, where ``gamma``
  scales every HI task's HI WCET (workload uncertainty).

Headline reproduced: with ``s = 2`` the FMS recovers in under 3 s
(periods are in milliseconds, so 3 s = 3000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import api
from repro.experiments import common
from repro.generator.fms import fms_taskset
from repro.model.transform import apply_uniform_scaling


@dataclass(frozen=True)
class Fig5aGrid:
    """Exact s_min over (x, y) for the FMS."""

    xs: np.ndarray
    ys: np.ndarray
    s_min: np.ndarray


@dataclass(frozen=True)
class Fig5bGrid:
    """Delta_R over (s, gamma) for the FMS (ms)."""

    speedups: np.ndarray
    gammas: np.ndarray
    delta_r: np.ndarray
    x_used: float
    y_used: float


def run_a(
    xs: Sequence[float] = None,
    ys: Sequence[float] = None,
    gamma: float = 2.0,
) -> Fig5aGrid:
    """Theorem-2 speedup over the (x, y) grid at fixed gamma."""
    base = fms_taskset(gamma)
    xs = np.asarray(xs if xs is not None else np.linspace(0.35, 0.95, 9))
    ys = np.asarray(ys if ys is not None else np.linspace(1.0, 4.0, 9))
    grid = np.empty((xs.size, ys.size))
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            configured = apply_uniform_scaling(base, float(x), float(y))
            grid[i, j] = api.min_speedup(configured).s_min
    return Fig5aGrid(xs=xs, ys=ys, s_min=grid)


def run_b(
    speedups: Sequence[float] = None,
    gammas: Sequence[float] = None,
    y: float = 2.0,
) -> Fig5bGrid:
    """Corollary-5 resetting time over the (s, gamma) grid.

    ``x`` is set per-gamma to the minimal LO-feasible value (Section VI
    convention); entries where ``s`` cannot drain the overload are inf.
    """
    speedups = np.asarray(speedups if speedups is not None else np.linspace(1.0, 3.0, 9))
    gammas = np.asarray(gammas if gammas is not None else np.linspace(1.0, 3.0, 9))
    grid = np.empty((speedups.size, gammas.size))
    x_used = float("nan")
    for j, gamma in enumerate(gammas):
        base = fms_taskset(float(gamma))
        x = api.min_preparation_factor(base, method="density")
        x_used = x
        configured = apply_uniform_scaling(base, x, y)
        for i, s in enumerate(speedups):
            grid[i, j] = api.resetting_time(configured, float(s)).delta_r
    return Fig5bGrid(
        speedups=speedups, gammas=gammas, delta_r=grid, x_used=x_used, y_used=y
    )


def run_headline(s: float = 2.0, y: float = 2.0, gammas: Sequence[float] = (1.0, 2.0, 3.0)) -> float:
    """Worst-case FMS resetting time (ms) at s over the gamma range."""
    worst = 0.0
    for gamma in gammas:
        base = fms_taskset(float(gamma))
        x = api.min_preparation_factor(base, method="density")
        configured = apply_uniform_scaling(base, x, y)
        worst = max(worst, api.resetting_time(configured, s).delta_r)
    return worst


def render() -> str:
    """Figure 5 as text: both contour grids plus the <3 s headline."""
    a = run_a()
    out = ["Figure 5a: FMS minimum speedup over (x, y), gamma = 2"]
    out.append(common.contour_grid("x", "y", a.xs, a.ys, a.s_min))
    out.append("")
    b = run_b()
    out.append(
        f"Figure 5b: FMS resetting time (ms) over (s, gamma), "
        f"y = {b.y_used:g}, x = min feasible"
    )
    out.append(common.contour_grid("s", "gamma", b.speedups, b.gammas, b.delta_r))
    worst = run_headline()
    out.append("")
    out.append(
        f"Headline: worst-case recovery at s = 2 is {worst:.4g} ms "
        f"(paper: < 3 s = 3000 ms) -> {'OK' if worst < 3000 else 'MISMATCH'}"
    )
    return "\n".join(out)
