"""Shared experiment plumbing: summary statistics and text rendering.

No plotting library is assumed; figures are reproduced as printed data
series (the numbers behind each curve) plus compact ASCII charts, which
is what the benchmark harness records in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Box-whisker summary of one distribution (Figure 6a/6c style)."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float

    @staticmethod
    def of(values: Sequence[float]) -> "BoxStats":
        """Summarize ``values``; infinities are kept out of the percentiles
        but reported through ``count`` bookkeeping by the caller."""
        arr = np.asarray([v for v in values if math.isfinite(v)], dtype=float)
        if arr.size == 0:
            nan = float("nan")
            return BoxStats(0, nan, nan, nan, nan, nan, nan)
        return BoxStats(
            count=int(arr.size),
            minimum=float(arr.min()),
            p25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            p75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
        )

    def row(self) -> str:
        return (
            f"n={self.count:<5d} min={self.minimum:<8.4g} p25={self.p25:<8.4g} "
            f"med={self.median:<8.4g} p75={self.p75:<8.4g} max={self.maximum:<8.4g} "
            f"mean={self.mean:<8.4g}"
        )


def series_table(
    x_label: str,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    *,
    fmt: str = "10.4g",
) -> str:
    """Render aligned columns: one row per x, one column per named series."""
    header = f"{x_label:>10} " + " ".join(f"{name:>12}" for name in columns)
    lines = [header, "-" * len(header)]
    for i, x in enumerate(xs):
        cells = []
        for values in columns.values():
            v = values[i]
            cells.append(f"{v:>12.4g}" if math.isfinite(v) else f"{'inf':>12}")
        lines.append(f"{x:>{10}.4g} " + " ".join(cells))
    return "\n".join(lines)


def contour_grid(
    row_label: str,
    col_label: str,
    rows: Sequence[float],
    cols: Sequence[float],
    grid: np.ndarray,
    *,
    fmt: str = "7.3g",
) -> str:
    """Render a 2-D sweep (Figure 5 contours / Figure 7 heat map) as text.

    ``grid[i, j]`` is the value at ``rows[i]``, ``cols[j]``.
    """
    header = f"{row_label}\\{col_label:<6}" + " ".join(f"{c:>8.3g}" for c in cols)
    lines = [header, "-" * len(header)]
    for i, r in enumerate(rows):
        cells = []
        for j in range(len(cols)):
            v = grid[i, j]
            cells.append(f"{v:>8.3g}" if math.isfinite(v) else f"{'inf':>8}")
        lines.append(f"{r:>12.3g} " + " ".join(cells))
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Tiny ASCII scatter/line plot for quick visual checks in benches."""
    pairs = [(x, y) for x, y in zip(xs, ys) if math.isfinite(y)]
    if not pairs:
        return f"{title}: (no finite data)"
    px = np.asarray([p[0] for p in pairs])
    py = np.asarray([p[1] for p in pairs])
    x0, x1 = float(px.min()), float(px.max())
    y0, y1 = float(py.min()), float(py.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    canvas = [[" "] * width for _ in range(height)]
    for x, y in pairs:
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = int((y - y0) / (y1 - y0) * (height - 1))
        canvas[height - 1 - row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{y1:10.4g} +" + "-" * width + "+")
    for row in canvas:
        lines.append(f"{'':10} |" + "".join(row) + "|")
    lines.append(f"{y0:10.4g} +" + "-" * width + "+")
    lines.append(f"{'':12}{x0:<10.4g}{'':{max(0, width - 20)}}{x1:>10.4g}")
    return "\n".join(lines)


def fraction_finite(values: Iterable[float]) -> float:
    """Share of finite entries (used for schedulable-percentage series)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if math.isfinite(v)) / len(values)


def percentile_or_inf(values: Sequence[float], q: float) -> float:
    """Percentile treating ``inf`` entries as larger than any finite value."""
    arr = sorted(values)
    if not arr:
        return float("nan")
    idx = min(int(math.ceil(q / 100.0 * len(arr))) - 1, len(arr) - 1)
    idx = max(idx, 0)
    return arr[idx]
