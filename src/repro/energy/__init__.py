"""Energy cost of temporary speedup (extension).

The paper motivates *temporary* speedup by its bounded power cost
(Section I cites Turbo-Boost-style budgets; reference [11] studies the
energy angle).  This package quantifies that cost with the standard
cubic DVFS proxy, turning the resetting-time bound into an energy
budget per overrun episode.
"""

from repro.energy.cost import (
    EnergyModel,
    episode_energy,
    episode_energy_overhead,
    long_run_power_overhead,
    optimal_recovery_speed,
)

__all__ = [
    "EnergyModel",
    "episode_energy",
    "episode_energy_overhead",
    "long_run_power_overhead",
    "optimal_recovery_speed",
]
