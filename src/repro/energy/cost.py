"""Energy accounting for speedup episodes.

A speedup episode runs the processor at speed ``s`` for (at most) the
resetting time ``Delta_R(s)`` of Corollary 5.  With the cubic power
proxy ``P(s) = s ** alpha`` the per-episode energy is

    E(s) = s ** alpha * Delta_R(s),

and because ``Delta_R`` shrinks roughly like ``1 / (s - s_min)``
(Lemma 7) there is a genuine optimisation problem: very small ``s``
drags the episode out, very large ``s`` burns power quadratically
faster than it saves time.  :func:`optimal_recovery_speed` locates the
minimum-energy speed on a grid.

Combined with a worst-case burst separation ``T_O`` (Section IV
remark), the *long-run* average power overhead of the scheme is

    (E(s) - nominal energy over Delta_R) / T_O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.resetting import resetting_time
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class EnergyModel:
    """DVFS power model: ``P(s) = dynamic * s**alpha + static``."""

    alpha: float = 3.0
    dynamic: float = 1.0
    static: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.dynamic <= 0.0:
            raise ValueError(f"dynamic coefficient must be positive, got {self.dynamic}")
        if self.static < 0.0:
            raise ValueError(f"static power must be non-negative, got {self.static}")

    def power(self, s: float) -> float:
        """Instantaneous power at speed ``s``."""
        if s < 0.0:
            raise ValueError(f"speed must be non-negative, got {s}")
        return self.dynamic * s**self.alpha + self.static


def episode_energy(
    taskset: TaskSet, s: float, model: EnergyModel = EnergyModel()
) -> float:
    """Worst-case energy of one speedup episode: ``P(s) * Delta_R(s)``.

    Infinite when ``s`` cannot drain the HI-mode backlog.
    """
    delta_r = resetting_time(taskset, s).delta_r
    if math.isinf(delta_r):
        return math.inf
    return model.power(s) * delta_r


def episode_energy_overhead(
    taskset: TaskSet, s: float, model: EnergyModel = EnergyModel()
) -> float:
    """Episode energy *beyond* running the same interval at nominal speed."""
    delta_r = resetting_time(taskset, s).delta_r
    if math.isinf(delta_r):
        return math.inf
    return (model.power(s) - model.power(1.0)) * delta_r


def long_run_power_overhead(
    taskset: TaskSet,
    s: float,
    t_o: float,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Average extra power given overrun bursts at least ``t_o`` apart.

    Returns ``inf`` when episodes can overlap (``Delta_R > T_O``), i.e.
    the system may stay boosted indefinitely.
    """
    if t_o <= 0.0:
        raise ValueError(f"T_O must be positive, got {t_o}")
    delta_r = resetting_time(taskset, s).delta_r
    if delta_r > t_o:
        return math.inf
    return episode_energy_overhead(taskset, s, model) / t_o


def optimal_recovery_speed(
    taskset: TaskSet,
    model: EnergyModel = EnergyModel(),
    *,
    s_max: float = 4.0,
    points: int = 200,
    s_min_hint: Optional[float] = None,
) -> Tuple[float, float]:
    """Minimum-energy recovery speed on a grid of feasible speeds.

    Returns ``(s_star, energy)``; raises when no grid speed up to
    ``s_max`` yields a finite episode energy.  ``s_min_hint`` (e.g. the
    Theorem-2 value) narrows the grid's lower end.
    """
    from repro.analysis.dbf import hi_mode_rate

    lower = max(s_min_hint or 0.0, hi_mode_rate(taskset)) + 1e-6
    if lower >= s_max:
        raise ValueError(f"no feasible speed in ({lower:.3g}, {s_max:.3g}]")
    grid = np.linspace(lower * 1.001, s_max, points)
    best_s, best_e = None, math.inf
    for s in grid:
        energy = episode_energy(taskset, float(s), model)
        if energy < best_e:
            best_s, best_e = float(s), energy
    if best_s is None or math.isinf(best_e):
        raise ValueError("every candidate speed has infinite episode energy")
    return best_s, best_e
