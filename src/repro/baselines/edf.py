"""Single-mode EDF baselines.

Two non-mixed-criticality extremes bracket every MC scheme:

* *optimistic* — trust the LO WCETs and run plain EDF; unsafe under
  overrun but maximally permissive (this is LO-mode feasibility).
* *pessimistic* — budget every HI task at its HI WCET all the time;
  safe but wasteful.  The gap between the two is the resource the MC
  protocol (and, here, temporary speedup) recovers.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet

_RTOL = 1e-9


def _dbf_single(c: float, d: float, t: float, delta: np.ndarray) -> np.ndarray:
    """Classic single-mode demand bound: ``max(floor((D-d)/t)+1, 0)*c``."""
    d_arr = np.asarray(delta, dtype=float)
    jobs = np.maximum(np.floor((d_arr - d) / t + 1e-12) + 1.0, 0.0)
    return jobs * c


def edf_utilization_schedulable(taskset: TaskSet, level: Criticality) -> bool:
    """Utilization test: exact for implicit deadlines at a single level."""
    total = sum(t.utilization(level) for t in taskset)
    implicit = all(t.deadline(level) >= t.period(level) or t.terminated_in_hi for t in taskset)
    if not implicit:
        raise ValueError("utilization test is exact only for implicit deadlines")
    return total <= 1.0 + _RTOL


_ParamsFn = Callable[[MCTask], Optional[Tuple[float, float, float]]]


def _demand_test(
    taskset: TaskSet, params: _ParamsFn, speed: float = 1.0
) -> bool:
    """Generic processor-demand test for per-task ``(c, d, t)`` triples."""
    triples = [params(t) for t in taskset]
    triples = [x for x in triples if x is not None]
    if not triples:
        return True
    rate = sum(c / t for c, _, t in triples)
    if rate > speed * (1.0 + _RTOL):
        return False
    # dbf(Delta) <= rate*Delta + B with B = sum (c/t)*(t - d): violations
    # only occur before B/(speed - rate); implicit deadlines pass outright.
    excess = sum((c / t) * max(t - d, 0.0) for c, d, t in triples)
    if excess <= 0.0:
        return True
    from repro.analysis.schedulability import _scan_horizon

    horizon = _scan_horizon([(d, t) for _, d, t in triples], speed, rate, excess)
    window_lo = 0.0
    step = 2.0 * max(t for _, _, t in triples)
    density = sum(1.0 / t for _, _, t in triples)
    max_window = 200_000 / density if density > 0 else np.inf
    while window_lo < horizon:
        window_hi = min(window_lo + step, horizon, window_lo + max_window)
        candidates = []
        for c, d, t in triples:
            k_hi = int(np.floor((window_hi - d) / t + 1e-12))
            k_lo = max(0, int(np.ceil((window_lo - d) / t - 1e-12)))
            if k_hi >= k_lo:
                candidates.append(np.arange(k_lo, k_hi + 1, dtype=float) * t + d)
        if candidates:
            points = np.unique(np.concatenate(candidates))
            points = points[(points > window_lo) & (points <= window_hi)]
            if points.size:
                demand = np.zeros_like(points)
                for c, d, t in triples:
                    demand += _dbf_single(c, d, t, points)
                if np.any(demand > speed * points * (1.0 + _RTOL) + _RTOL):
                    return False
        window_lo = window_hi
        step *= 2.0
    return True


def edf_demand_schedulable(taskset: TaskSet, level: Criticality, speed: float = 1.0) -> bool:
    """Exact EDF demand test with every task at its ``level`` parameters.

    ``level = LO`` reproduces the optimistic baseline; terminated tasks
    are skipped at level HI.
    """

    def params(task: MCTask) -> Optional[Tuple[float, float, float]]:
        if level is Criticality.HI and task.terminated_in_hi:
            return None
        return (task.wcet(level), task.deadline(level), task.period(level))

    return _demand_test(taskset, params, speed)


def pessimistic_edf_schedulable(taskset: TaskSet, speed: float = 1.0) -> bool:
    """Pessimistic baseline: HI WCETs with original (LO-mode) deadlines.

    Every job is budgeted at ``C(HI)`` while keeping its normal service
    (``D(LO)``, ``T(LO)``); no mode switching is ever needed, at the cost
    of massive over-provisioning.
    """

    def params(task: MCTask) -> Optional[Tuple[float, float, float]]:
        return (task.c_hi, task.d_lo, task.t_lo)

    return _demand_test(taskset, params, speed)
