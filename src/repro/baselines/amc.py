"""Fixed-priority Adaptive Mixed Criticality (AMC) — a second baseline.

Baruah, Burns & Davis, *Response-Time Analysis for Mixed Criticality
Systems* (RTSS 2011).  The EDF-based scheme of this paper is usually
contrasted with the fixed-priority state of the art; AMC-rtb with
Audsley's optimal priority assignment is that comparator:

* LO-mode response time (classic RTA, LO WCETs)::

      R_i = C_i(LO) + sum_{j in hp(i)} ceil(R_i / T_j) * C_j(LO)

* HI-mode response time, AMC-rtb bound: after the switch only HI tasks
  keep running (LO tasks are terminated), but LO-criticality
  higher-priority tasks may have interfered before the switch, which
  happens no later than ``R_i(LO)``::

      R_i(HI) = C_i(HI)
              + sum_{j in hpH(i)} ceil(R_i(HI) / T_j) * C_j(HI)
              + sum_{k in hpL(i)} ceil(R_i(LO) / T_k) * C_k(LO)

A task is schedulable when its relevant response times meet the
respective deadlines; Audsley's algorithm searches a feasible priority
order bottom-up.  All analysis is on a unit-speed processor, making AMC
the fixed-priority analogue of the paper's "no speedup" comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.task import MCTask
from repro.model.taskset import TaskSet

#: Iteration cap for the fixed-point recurrences.
_MAX_ITER = 10_000


def _fixed_point(
    start: float, step: Callable[[float], float]
) -> Optional[float]:
    """Solve ``R = step(R)`` by iteration from ``start``; None = divergence."""
    response = start
    for _ in range(_MAX_ITER):
        nxt = step(response)
        if nxt <= response + 1e-12:
            return nxt
        response = nxt
    return None


def lo_mode_response_time(
    task: MCTask, higher: Sequence[MCTask], bound: Optional[float] = None
) -> Optional[float]:
    """Classic RTA with LO WCETs; ``None`` when it exceeds ``bound``.

    ``bound`` defaults to the task's LO-mode deadline (divergence past
    the deadline means unschedulable anyway).
    """
    limit = task.d_lo if bound is None else bound

    def step(r: float) -> float:
        return task.c_lo + sum(
            math.ceil(r / j.t_lo - 1e-12) * j.c_lo for j in higher
        )

    response = _fixed_point(task.c_lo, step)
    if response is None or response > limit + 1e-9:
        return None
    return response


def hi_mode_response_time(
    task: MCTask, higher: Sequence[MCTask], r_lo: float
) -> Optional[float]:
    """AMC-rtb HI-mode response time for a HI task; None = diverges."""
    hp_hi = [j for j in higher if j.is_hi]
    hp_lo = [j for j in higher if j.is_lo]
    lo_interference = sum(
        math.ceil(r_lo / k.t_lo - 1e-12) * k.c_lo for k in hp_lo
    )

    def step(r: float) -> float:
        return (
            task.c_hi
            + lo_interference
            + sum(math.ceil(r / j.t_hi - 1e-12) * j.c_hi for j in hp_hi)
        )

    response = _fixed_point(task.c_hi, step)
    if response is None or response > task.d_hi + 1e-9:
        return None
    return response


def _priority_level_feasible(task: MCTask, higher: Sequence[MCTask]) -> bool:
    """Can ``task`` sit *below* every task in ``higher``?"""
    r_lo = lo_mode_response_time(task, higher)
    if r_lo is None:
        return False
    if task.is_lo:
        return True
    r_hi = hi_mode_response_time(task, higher, r_lo)
    return r_hi is not None


@dataclass(frozen=True)
class AmcResult:
    """Verdict of the AMC-rtb + Audsley analysis.

    Attributes
    ----------
    schedulable:
        Whether some priority order passes AMC-rtb.
    priority_order:
        Highest-priority-first task names (``None`` when unschedulable).
    response_times:
        Per task: ``(R_LO, R_HI)`` with ``R_HI = None`` for LO tasks.
    """

    schedulable: bool
    priority_order: Optional[List[str]]
    response_times: Dict[str, Tuple[Optional[float], Optional[float]]]


def amc_schedulable(taskset: TaskSet) -> AmcResult:
    """Audsley's optimal priority assignment over the AMC-rtb test.

    Audsley's argument applies because the per-level test depends only
    on the *set* of higher-priority tasks, not their relative order.
    """
    remaining: List[MCTask] = list(taskset)
    order_low_to_high: List[MCTask] = []
    while remaining:
        placed = None
        for candidate in remaining:
            higher = [t for t in remaining if t is not candidate]
            if _priority_level_feasible(candidate, higher):
                placed = candidate
                break
        if placed is None:
            return AmcResult(False, None, {})
        order_low_to_high.append(placed)
        remaining.remove(placed)

    order = list(reversed(order_low_to_high))  # highest priority first
    responses: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
    for idx, task in enumerate(order):
        higher = order[:idx]
        r_lo = lo_mode_response_time(task, higher)
        r_hi = (
            hi_mode_response_time(task, higher, r_lo)
            if task.is_hi and r_lo is not None
            else None
        )
        responses[task.name] = (r_lo, r_hi)
    return AmcResult(True, [t.name for t in order], responses)


def smc_schedulable(taskset: TaskSet) -> bool:
    """Static Mixed Criticality (SMC) sufficient test, for reference.

    SMC runs every task at its own-criticality WCET with no mode switch:
    HI tasks budgeted at ``C(HI)``, LO tasks at ``C(LO)``, deadlines at
    the LO-mode values.  Deadline-monotonic priorities; plain RTA.
    """
    order = sorted(taskset, key=lambda t: t.d_lo)
    for idx, task in enumerate(order):
        higher = order[:idx]

        def step(r: float) -> float:
            return task.wcet(task.crit) + sum(
                math.ceil(r / j.t_lo - 1e-12) * j.wcet(j.crit) for j in higher
            )

        response = _fixed_point(task.wcet(task.crit), step)
        if response is None or response > task.d_lo + 1e-9:
            return False
    return True
