"""Dual-rate fluid reference bound (MC-Fluid family, Ramanathan et al.).

Fluid scheduling lets every task occupy a constant *fraction* of a
processor, sidestepping partitioning losses entirely — which makes it
the natural upper reference for the multiprocessor region maps: a point
no fluid scheme can schedule is lost for every partitioned scheme too,
while the gap between the fluid and partitioned frontiers is the price
of binning.

The model is the dual-rate one of MC-Fluid: each HI task ``i`` runs at
rate ``theta^LO_i`` before the mode switch and ``theta^HI_i`` after it;
LO tasks run at their LO utilization ``u_i`` throughout (the fluid
reference keeps full LO service — the degraded baseline is the scheme
that sheds quality).  With ``a = C(LO)/T`` and ``b = C(HI)/T``, a HI
task meets both assurance levels iff its rates satisfy

    ``theta^LO(theta) = a * theta / (theta - (b - a))``,
    ``theta >= L = max(b, (b - a) / (1 - a))``,

for its HI rate ``theta <= 1``: the carry-over job that observed the
switch must finish its remaining HI demand at the new rate inside the
original period, which reduces to the hyperbola above; ``L`` is the
smallest HI rate for which the implied LO rate stays ``<= 1`` and the
steady-state HI demand fits.

``theta^LO`` is *decreasing* in ``theta``: granting a HI task more
post-switch rate lets it run slower before the switch.  Minimizing the
LO-mode load ``sum theta^LO_i`` subject to the HI-mode capacity
``sum theta_i <= m`` is therefore a waterfilling problem, and the KKT
stationarity condition gives the closed form

    ``theta_i(lam) = clamp((b_i - a_i) + sqrt(a_i (b_i - a_i) / lam),
                           L_i, 1)``

with a single multiplier ``lam`` fixed by ``sum theta_i(lam) = m``.  A
fixed-iteration bisection on ``lam`` (no early exit, no tolerance
branch) keeps the verdict bit-for-bit deterministic across platforms.
The set is fluid-schedulable on ``m`` unit-speed processors iff every
per-task bound holds, ``sum L_i <= m``, and the minimized LO-mode load
fits: ``sum theta^LO_i + U^LO_LO <= m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.task import Criticality
from repro.model.taskset import TaskSet

_RTOL = 1e-9
_BISECT_ITERS = 200


@dataclass(frozen=True)
class FluidResult:
    """Verdict of the dual-rate fluid feasibility test.

    Attributes
    ----------
    schedulable:
        Whether the dual-rate fluid model can schedule the set on ``m``
        unit-speed processors with full LO service.
    lo_load:
        Minimized LO-mode fluid load ``sum theta^LO_i + U^LO_LO``
        (``None`` when the HI-mode capacity check already fails).
    hi_rates:
        The HI tasks' optimized post-switch rates ``theta^HI_i`` in task
        order (empty when infeasible before rate assignment).
    """

    schedulable: bool
    lo_load: Optional[float]
    hi_rates: Tuple[float, ...]


def fluid_speedup_bound() -> float:
    """MC-Fluid's proven multiprocessor speedup bound (4/3)."""
    return 4.0 / 3.0


def _rate_params(taskset: TaskSet) -> Optional[List[Tuple[float, float, float]]]:
    """Per-HI-task ``(a, d, L)`` with ``d = b - a``; ``None`` if any task
    is individually infeasible (``L > 1``)."""
    params: List[Tuple[float, float, float]] = []
    for task in taskset.hi_tasks:
        a = task.c_lo / task.t_lo
        b = task.c_hi / task.t_lo
        d = max(b - a, 0.0)
        if a >= 1.0 - _RTOL:
            lower = math.inf if d > 0.0 else max(a, b)
        else:
            lower = max(b, d / (1.0 - a))
        if lower > 1.0 + _RTOL:
            return None
        params.append((a, d, min(lower, 1.0)))
    return params


def _rates_at(lam: float, params: List[Tuple[float, float, float]]) -> List[float]:
    rates = []
    for a, d, lower in params:
        if a <= 0.0 or d <= 0.0:
            rates.append(lower)
        else:
            rates.append(min(max(d + math.sqrt(a * d / lam), lower), 1.0))
    return rates


def fluid_schedulable(taskset: TaskSet, m: int) -> FluidResult:
    """Dual-rate fluid feasibility of ``taskset`` on ``m`` processors.

    Expects implicit-deadline base parameters (the generator's output).
    Deterministic: the waterfilling multiplier is resolved by a
    fixed-iteration bisection, so equal inputs give bit-equal verdicts.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    u_lo_lo = taskset.u_lo_of_lo
    if any(
        t.utilization(Criticality.LO) > 1.0 + _RTOL for t in taskset.lo_tasks
    ):
        return FluidResult(False, None, ())
    params = _rate_params(taskset)
    if params is None:
        return FluidResult(False, None, ())
    floor = sum(lower for _, _, lower in params)
    if floor > m + _RTOL:
        return FluidResult(False, None, ())
    if len(params) <= m:
        # Capacity never binds: every HI task takes the full processor
        # fraction, which minimizes each theta^LO independently.
        rates = [1.0] * len(params)
    else:
        # sum theta(lam) is decreasing in lam; bracket and bisect.
        lo_lam, hi_lam = 1e-18, 1e18
        for _ in range(_BISECT_ITERS):
            mid = math.sqrt(lo_lam * hi_lam)
            if sum(_rates_at(mid, params)) > m:
                lo_lam = mid
            else:
                hi_lam = mid
        rates = _rates_at(hi_lam, params)
    lo_load = u_lo_lo
    for (a, d, _), theta in zip(params, rates):
        if a <= 0.0:
            continue
        denom = theta - d
        if denom <= 0.0:
            return FluidResult(False, None, tuple(rates))
        lo_load += a * theta / denom
    ok = lo_load <= m + _RTOL
    return FluidResult(ok, lo_load, tuple(rates))
