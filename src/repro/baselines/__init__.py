"""Baseline schedulers/tests the paper's approach is compared against.

* :mod:`repro.baselines.edf` — single-mode EDF feasibility tests: the
  optimistic (all-LO) and pessimistic (all-HI) extremes.
* :mod:`repro.baselines.edf_vd` — classic EDF-VD (Baruah et al.,
  ECRTS 2012): virtual deadlines plus LO-task termination, *no*
  speedup.  This is the ``s_min = 1`` comparison point of Figure 6a and
  the "no processor speedup" region of Figure 7.
* :mod:`repro.baselines.amc` — fixed-priority AMC-rtb with Audsley's
  priority assignment (Baruah/Burns/Davis, RTSS 2011) and the SMC
  sufficient test: the fixed-priority state of the art.
* :mod:`repro.baselines.edf_vd_degraded` — EDF-VD with degraded quality
  guarantees (Liu et al.): LO tasks survive the mode switch at reduced
  service instead of being terminated — the "shed quality instead of
  buying speedup" axis of the multiprocessor comparison.
* :mod:`repro.baselines.fluid` — the dual-rate fluid reference bound
  (MC-Fluid family): the partitioning-loss-free upper frontier for the
  multiprocessor region maps.
"""

from repro.baselines.edf import (
    edf_demand_schedulable,
    edf_utilization_schedulable,
    pessimistic_edf_schedulable,
)
from repro.baselines.edf_vd import (
    EdfVdResult,
    edf_vd_schedulable,
    edf_vd_virtual_deadline_factor,
)
from repro.baselines.edf_vd_degraded import (
    EdfVdDegradedResult,
    degraded_lo_utilization,
    edf_vd_degraded_schedulable,
    rung_quality,
)
from repro.baselines.fluid import (
    FluidResult,
    fluid_schedulable,
    fluid_speedup_bound,
)
from repro.baselines.amc import AmcResult, amc_schedulable, smc_schedulable

__all__ = [
    "edf_demand_schedulable",
    "edf_utilization_schedulable",
    "pessimistic_edf_schedulable",
    "EdfVdResult",
    "edf_vd_schedulable",
    "edf_vd_virtual_deadline_factor",
    "EdfVdDegradedResult",
    "degraded_lo_utilization",
    "edf_vd_degraded_schedulable",
    "rung_quality",
    "FluidResult",
    "fluid_schedulable",
    "fluid_speedup_bound",
    "AmcResult",
    "amc_schedulable",
    "smc_schedulable",
]
