"""Baseline schedulers/tests the paper's approach is compared against.

* :mod:`repro.baselines.edf` — single-mode EDF feasibility tests: the
  optimistic (all-LO) and pessimistic (all-HI) extremes.
* :mod:`repro.baselines.edf_vd` — classic EDF-VD (Baruah et al.,
  ECRTS 2012): virtual deadlines plus LO-task termination, *no*
  speedup.  This is the ``s_min = 1`` comparison point of Figure 6a and
  the "no processor speedup" region of Figure 7.
* :mod:`repro.baselines.amc` — fixed-priority AMC-rtb with Audsley's
  priority assignment (Baruah/Burns/Davis, RTSS 2011) and the SMC
  sufficient test: the fixed-priority state of the art.
"""

from repro.baselines.edf import (
    edf_demand_schedulable,
    edf_utilization_schedulable,
    pessimistic_edf_schedulable,
)
from repro.baselines.edf_vd import (
    EdfVdResult,
    edf_vd_schedulable,
    edf_vd_virtual_deadline_factor,
)
from repro.baselines.amc import AmcResult, amc_schedulable, smc_schedulable

__all__ = [
    "edf_demand_schedulable",
    "edf_utilization_schedulable",
    "pessimistic_edf_schedulable",
    "EdfVdResult",
    "edf_vd_schedulable",
    "edf_vd_virtual_deadline_factor",
    "AmcResult",
    "amc_schedulable",
    "smc_schedulable",
]
