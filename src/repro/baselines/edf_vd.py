"""Classic EDF-VD (Baruah et al., ECRTS 2012) — the no-speedup baseline.

EDF with Virtual Deadlines handles dual-criticality implicit-deadline
sporadic tasks on a *unit-speed* processor by (i) shortening HI tasks'
deadlines by a factor ``x`` in LO mode and (ii) *terminating* all LO
tasks on a switch to HI mode.  Writing ``U^chi_lev`` for the total
utilization of the ``chi``-criticality tasks at their ``lev`` WCETs, the
scheme is schedulable when either

* ``U^LO_LO + U^HI_HI <= 1`` (plain worst-case EDF suffices; no virtual
  deadlines needed), or
* ``x = U^HI_LO / (1 - U^LO_LO)`` satisfies
  ``x * U^LO_LO ... `` equivalently ``U^LO_LO * x + U^HI_HI <= 1``
  — i.e. a feasible ``x`` exists in
  ``[U^HI_LO / (1 - U^LO_LO), (1 - U^HI_HI) / U^LO_LO]``.

EDF-VD is speedup-optimal among MC schedulers with a 4/3 bound, which
makes it the natural ``s = 1`` comparison point for the paper's Figures
6a and 7 ("no processor speedup").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.model.task import Criticality
from repro.model.taskset import TaskSet

_RTOL = 1e-9


@dataclass(frozen=True)
class EdfVdResult:
    """Verdict of the EDF-VD test.

    Attributes
    ----------
    schedulable:
        Whether EDF-VD can schedule the set on a unit-speed processor.
    x:
        The virtual-deadline factor to deploy (``None`` when plain
        worst-case EDF already works or the set is unschedulable).
    plain_edf:
        True when ``U^LO_LO + U^HI_HI <= 1`` (no mode logic needed).
    """

    schedulable: bool
    x: Optional[float]
    plain_edf: bool


def _utilizations(taskset: TaskSet) -> Tuple[float, float, float]:
    u_lo_lo = taskset.utilization(Criticality.LO, Criticality.LO)
    u_hi_lo = taskset.utilization(Criticality.LO, Criticality.HI)
    u_hi_hi = sum(t.c_hi / t.t_lo for t in taskset.hi_tasks)
    return u_lo_lo, u_hi_lo, u_hi_hi


def edf_vd_virtual_deadline_factor(taskset: TaskSet) -> Optional[float]:
    """The canonical EDF-VD deadline-shrinking factor.

    ``x = U^HI_LO / (1 - U^LO_LO)``; ``None`` when LO mode is already
    infeasible (``U^LO_LO + U^HI_LO > 1``).

    Both the infeasibility guard and the zero-headroom branch resolve
    at the same ``_RTOL`` tolerance: a set within ``_RTOL`` of the
    ``U^LO_LO = 1`` boundary gets the same verdict from either side.
    ``headroom <= _RTOL`` is treated as *no* headroom — the division
    ``u_hi_lo / headroom`` would be numerically meaningless there — so
    such a set is feasible (``x = 1``) exactly when its HI-task LO
    utilization is itself negligible at the same tolerance.
    """
    u_lo_lo, u_hi_lo, _ = _utilizations(taskset)
    if u_lo_lo + u_hi_lo > 1.0 + _RTOL:
        return None
    headroom = 1.0 - u_lo_lo
    if headroom <= _RTOL:
        return None if u_hi_lo > _RTOL else 1.0
    return min(u_hi_lo / headroom, 1.0) if u_hi_lo > 0.0 else 1.0


def edf_vd_schedulable(taskset: TaskSet) -> EdfVdResult:
    """Apply the ECRTS-2012 sufficient schedulability test.

    Expects implicit-deadline base parameters (the generator's output);
    the LO tasks' HI-mode parameters are irrelevant because EDF-VD
    terminates them.
    """
    u_lo_lo, u_hi_lo, u_hi_hi = _utilizations(taskset)
    if u_lo_lo + u_hi_hi <= 1.0 + _RTOL:
        return EdfVdResult(True, None, True)
    x = edf_vd_virtual_deadline_factor(taskset)
    if x is None or x > 1.0:
        return EdfVdResult(False, None, False)
    if x * u_lo_lo + u_hi_hi <= 1.0 + _RTOL:
        return EdfVdResult(True, x, False)
    return EdfVdResult(False, None, False)


def edf_vd_speedup_bound() -> float:
    """EDF-VD's proven speedup-optimality bound (4/3)."""
    return 4.0 / 3.0
