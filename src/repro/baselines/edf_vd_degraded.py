"""EDF-VD with degraded quality guarantees (Liu et al., RTSS 2016).

Classic EDF-VD (:mod:`repro.baselines.edf_vd`) *terminates* every LO
task on the switch to HI mode.  The degraded-quality variant keeps LO
tasks alive at a reduced service level instead: each LO task is assigned
a *quality rung* from the PR-1 degradation ladder
(:class:`repro.sim.degradation.Rung`), and in HI mode it receives the
corresponding fraction of its LO-mode utilization:

====================  ==========================================
rung                  retained HI-mode utilization fraction
====================  ==========================================
``NONE`` / ``EXTEND``  ``1.0``      (full service preserved)
``DEGRADE``            ``1 / y``    (Eq.-14 style stretching by ``y``)
``TERMINATE`` / ``KILL``  ``0.0``   (classic EDF-VD behaviour)
====================  ==========================================

Writing ``U^LO_deg`` for the summed retained utilization, the
sufficient test generalizes the ECRTS-2012 condition: with the same
virtual-deadline factor ``x = U^HI_LO / (1 - U^LO_LO)``, the set is
schedulable on a unit-speed processor when

    ``x * U^LO_LO + U^HI_HI + (1 - x) * U^LO_deg <= 1``.

The ``(1 - x)`` weight is the fraction of a busy interval that may lie
after the mode switch in the ECRTS-2012 density argument; the degraded
LO tasks claim it at their reduced rate.  Setting every rung to
``TERMINATE`` gives ``U^LO_deg = 0`` and recovers classic EDF-VD
exactly; rung ``NONE`` demands full LO service and collapses to the
plain worst-case EDF condition.

This is the "no speedup, degraded quality" axis of the multiprocessor
comparison (`repro-mc multiproc`): temporary processor speedup preserves
full LO service by *buying capacity*, the degraded baseline preserves
schedulability by *shedding quality* — the region maps show where each
wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.baselines.edf_vd import edf_vd_virtual_deadline_factor
from repro.model.task import Criticality
from repro.model.taskset import TaskSet

if TYPE_CHECKING:  # runtime import is lazy: repro.sim pulls in the
    from repro.sim.degradation import Rung  # simulator (and, via the
    # resilience suite, repro.api) — a cycle at facade load time.

_RTOL = 1e-9


@dataclass(frozen=True)
class EdfVdDegradedResult:
    """Verdict of the degraded-quality EDF-VD test.

    Attributes
    ----------
    schedulable:
        Whether the set is schedulable on a unit-speed processor with
        the requested quality rungs.
    x:
        The virtual-deadline factor to deploy (``None`` when plain
        worst-case EDF already works or the set is unschedulable).
    plain_edf:
        True when full-service worst-case EDF suffices (no mode logic,
        no degradation actually exercised).
    u_lo_degraded:
        ``U^LO_deg`` — the LO tasks' summed retained HI-mode
        utilization under the assigned rungs.
    """

    schedulable: bool
    x: Optional[float]
    plain_edf: bool
    u_lo_degraded: float


def rung_quality(rung: "Rung", y: float) -> float:
    """Retained utilization fraction for a quality ``rung``.

    ``y`` is the Eq.-14 degradation factor applied at rung ``DEGRADE``
    (``y = inf`` makes ``DEGRADE`` equivalent to termination).
    """
    from repro.sim.degradation import Rung

    if not (y >= 1.0):
        raise ValueError(f"degradation factor y must be >= 1 (or inf), got {y}")
    if rung in (Rung.NONE, Rung.EXTEND):
        return 1.0
    if rung in (Rung.TERMINATE, Rung.KILL):
        return 0.0
    return 0.0 if math.isinf(y) else 1.0 / y


def degraded_lo_utilization(
    taskset: TaskSet,
    *,
    y: float = 2.0,
    rungs: Optional[Mapping[str, "Rung"]] = None,
) -> float:
    """``U^LO_deg``: summed retained HI-mode utilization of the LO tasks.

    ``rungs`` maps task names to quality rungs; unnamed LO tasks default
    to ``Rung.DEGRADE`` (service stretched by ``y``).  Rungs for HI or
    unknown task names are rejected — a silent typo there would quietly
    run the classic test instead.
    """
    from repro.sim.degradation import Rung

    if rungs:
        names = {t.name for t in taskset}
        lo_names = {t.name for t in taskset.lo_tasks}
        for name in rungs:
            if name not in names:
                raise ValueError(f"rung assigned to unknown task {name!r}")
            if name not in lo_names:
                raise ValueError(
                    f"quality rungs apply to LO tasks only, {name!r} is HI"
                )
    total = 0.0
    for task in taskset.lo_tasks:
        rung = rungs.get(task.name, Rung.DEGRADE) if rungs else Rung.DEGRADE
        total += rung_quality(rung, y) * task.utilization(Criticality.LO)
    return total


def edf_vd_degraded_schedulable(
    taskset: TaskSet,
    *,
    y: float = 2.0,
    rungs: Optional[Mapping[str, "Rung"]] = None,
) -> EdfVdDegradedResult:
    """Apply the degraded-quality EDF-VD sufficient test.

    Expects implicit-deadline base parameters (the generator's output).
    With every rung at ``TERMINATE`` the verdict coincides with
    :func:`repro.baselines.edf_vd.edf_vd_schedulable`.
    """
    u_lo_deg = degraded_lo_utilization(taskset, y=y, rungs=rungs)
    u_lo_lo = taskset.u_lo_of_lo
    u_hi_hi = sum(t.c_hi / t.t_lo for t in taskset.hi_tasks)
    if u_lo_lo + u_hi_hi <= 1.0 + _RTOL:
        return EdfVdDegradedResult(True, None, True, u_lo_deg)
    x = edf_vd_virtual_deadline_factor(taskset)
    if x is None or x > 1.0:
        return EdfVdDegradedResult(False, None, False, u_lo_deg)
    if x * u_lo_lo + u_hi_hi + (1.0 - x) * u_lo_deg <= 1.0 + _RTOL:
        return EdfVdDegradedResult(True, x, False, u_lo_deg)
    return EdfVdDegradedResult(False, None, False, u_lo_deg)
