"""Static task partitioning with per-core speedup analysis.

Strategy: classical bin-packing heuristics over a utilization proxy,
with an *admission test per core* that is the paper's own dual-mode
analysis — a task fits on a core iff the core's task set stays LO-mode
feasible and its Theorem-2 requirement stays within the per-core
speedup cap.  After assignment, each core gets its exact ``s_min`` and
``Delta_R`` so heterogeneous boost budgets can be provisioned.

Heuristics:

* ``"first_fit"``  — first core that admits the task;
* ``"worst_fit"``  — emptiest admitting core (balances load, tends to
  equalize the per-core speedup requirements);
* ``"best_fit"``   — fullest admitting core (packs tightly, frees whole
  cores for future growth).

Tasks are considered in decreasing LO-utilization order (the standard
decreasing-first-fit family).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.resetting import ResettingResult, resetting_time
from repro.analysis.schedulability import lo_mode_schedulable
from repro.analysis.speedup import SpeedupResult, min_speedup
from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet

_HEURISTICS = ("first_fit", "worst_fit", "best_fit")


class PartitioningError(ValueError):
    """Raised when the task set cannot be partitioned onto the cores."""


@dataclass
class CoreDesign:
    """Per-core outcome of the partitioned design."""

    index: int
    taskset: TaskSet
    s_min: SpeedupResult
    resetting: Optional[ResettingResult]

    @property
    def u_lo(self) -> float:
        return self.taskset.u_lo_system


@dataclass
class PartitionedDesign:
    """A complete multi-core deployment.

    Attributes
    ----------
    cores:
        Per-core task sets with their exact analysis results.
    speedup_cap:
        The per-core speedup cap the admission used.
    max_s_min:
        The largest per-core requirement (provision the boost for this).
    max_delta_r:
        The slowest per-core recovery at the cap.
    """

    cores: List[CoreDesign]
    speedup_cap: float

    @property
    def max_s_min(self) -> float:
        finite = [c.s_min.s_min for c in self.cores if c.taskset]
        return max(finite) if finite else 0.0

    @property
    def max_delta_r(self) -> float:
        values = [
            c.resetting.delta_r for c in self.cores if c.resetting is not None
        ]
        return max(values) if values else 0.0

    @property
    def used_cores(self) -> int:
        return sum(1 for c in self.cores if len(c.taskset) > 0)

    def assignment(self) -> Dict[str, int]:
        """``task name -> core index`` mapping."""
        return {
            task.name: core.index for core in self.cores for task in core.taskset
        }

    def table(self) -> str:
        """Per-core summary table."""
        header = f"{'core':>5} {'tasks':>6} {'U_LO':>7} {'s_min':>8} {'Delta_R':>9}"
        lines = [header, "-" * len(header)]
        for core in self.cores:
            dr = core.resetting.delta_r if core.resetting else float("nan")
            lines.append(
                f"{core.index:>5d} {len(core.taskset):>6d} {core.u_lo:>7.3f} "
                f"{core.s_min.s_min:>8.3f} {dr:>9.3f}"
            )
        return "\n".join(lines)


def _admits(tasks: List[MCTask], candidate: MCTask, speedup_cap: float) -> bool:
    trial = TaskSet(tasks + [candidate])
    if not lo_mode_schedulable(trial):
        return False
    return min_speedup(trial).s_min <= speedup_cap * (1.0 + 1e-9)


def partition_tasks(
    taskset: TaskSet,
    n_cores: int,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
) -> List[TaskSet]:
    """Assign every task to one of ``n_cores`` cores.

    Raises :class:`PartitioningError` when some task fits nowhere under
    the per-core admission test.
    """
    if n_cores < 1:
        raise PartitioningError(f"need at least one core, got {n_cores}")
    if heuristic not in _HEURISTICS:
        raise PartitioningError(f"unknown heuristic {heuristic!r}")
    if speedup_cap <= 0.0:
        raise PartitioningError(f"speedup cap must be positive, got {speedup_cap}")

    bins: List[List[MCTask]] = [[] for _ in range(n_cores)]
    order = sorted(
        taskset, key=lambda t: t.utilization(Criticality.LO), reverse=True
    )
    for task in order:
        candidates = [
            i for i in range(n_cores) if _admits(bins[i], task, speedup_cap)
        ]
        if not candidates:
            raise PartitioningError(
                f"task {task.name!r} fits on no core "
                f"({n_cores} cores, cap {speedup_cap:g})"
            )
        if heuristic == "first_fit":
            chosen = candidates[0]
        elif heuristic == "worst_fit":
            chosen = min(
                candidates, key=lambda i: sum(t.c_lo / t.t_lo for t in bins[i])
            )
        else:  # best_fit
            chosen = max(
                candidates, key=lambda i: sum(t.c_lo / t.t_lo for t in bins[i])
            )
        bins[chosen].append(task)
    return [
        TaskSet(tasks, name=f"{taskset.name}|core{i}") for i, tasks in enumerate(bins)
    ]


def partitioned_design(
    taskset: TaskSet,
    n_cores: int,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
    evaluate_at_cap: bool = True,
) -> PartitionedDesign:
    """Partition and fully analyse every core.

    ``evaluate_at_cap`` computes each core's ``Delta_R`` at the common
    cap (uniform provisioning); otherwise at the core's own ``s_min``
    times 1.01 (heterogeneous provisioning).
    """
    partitions = partition_tasks(
        taskset, n_cores, speedup_cap=speedup_cap, heuristic=heuristic
    )
    cores: List[CoreDesign] = []
    for index, core_set in enumerate(partitions):
        requirement = min_speedup(core_set)
        reset = None
        if len(core_set) and math.isfinite(requirement.s_min):
            s = speedup_cap if evaluate_at_cap else max(requirement.s_min, 1e-6) * 1.01
            reset = resetting_time(core_set, s)
        cores.append(
            CoreDesign(index=index, taskset=core_set, s_min=requirement, resetting=reset)
        )
    return PartitionedDesign(cores=cores, speedup_cap=speedup_cap)


def min_cores(
    taskset: TaskSet,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
    max_cores: int = 64,
) -> int:
    """Smallest core count the heuristic can partition ``taskset`` onto."""
    for n in range(1, max_cores + 1):
        try:
            partition_tasks(taskset, n, speedup_cap=speedup_cap, heuristic=heuristic)
            return n
        except PartitioningError:
            continue
    raise PartitioningError(
        f"not partitionable within {max_cores} cores (cap {speedup_cap:g})"
    )
