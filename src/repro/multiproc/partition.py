"""Static task partitioning with per-core speedup analysis.

Strategy: classical bin-packing heuristics over a utilization proxy,
with an *admission test per core* that is the paper's own dual-mode
analysis — a task fits on a core iff the core's task set stays LO-mode
feasible and its Theorem-2 requirement stays within the per-core
speedup cap.  After assignment, each core gets its exact ``s_min`` and
``Delta_R`` so heterogeneous boost budgets can be provisioned.

The admission question — *which cores can take this task?* — is
delegated to an admission object (:mod:`repro.multiproc.admission`), so
one heuristic loop serves both the paper's speedup scheme and the
EDF-VD-with-degraded-quality baseline, and the speedup admission can
batch all of a task's per-core trials through the population kernels
(``engine="population"``, the default) instead of re-running the scalar
analysis per (core, candidate) pair.  Both engines are byte-identical
in their decisions; the batched one just shares each scan round's
breakpoint generation and demand kernels across the cores.

Heuristics:

* ``"first_fit"``  — first core that admits the task;
* ``"worst_fit"``  — emptiest admitting core (balances load, tends to
  equalize the per-core speedup requirements);
* ``"best_fit"``   — fullest admitting core (packs tightly, frees whole
  cores for future growth).

Ties on the load proxy break to the *lowest core index* (Python's
``min``/``max`` keep the first optimum), so a heuristic's choice is a
pure function of the admission verdicts — deterministic across runs,
job counts, and admission engines.

Tasks are considered in decreasing LO-utilization order (the standard
decreasing-first-fit family).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

from repro.analysis.resetting import ResettingResult, resetting_time
from repro.analysis.speedup import SpeedupResult, min_speedup
from repro.model.task import Criticality, MCTask
from repro.model.taskset import TaskSet
from repro.multiproc.admission import (
    ADMISSION_ENGINES,
    EdfVdDegradedAdmission,
    SpeedupAdmission,
)

if TYPE_CHECKING:  # type-only: importing repro.sim at runtime would
    from repro.sim.degradation import Rung  # cycle through repro.api.

_HEURISTICS = ("first_fit", "worst_fit", "best_fit")


class PartitioningError(ValueError):
    """Raised when the task set cannot be partitioned onto the cores."""


class AdmissionTest(Protocol):
    """What a partitioning heuristic needs from an admission policy."""

    def admitting_cores(
        self,
        bins: Sequence[Sequence[MCTask]],
        candidate: MCTask,
        core_indices: Sequence[int],
    ) -> List[int]:
        """Subset of ``core_indices`` whose core admits ``candidate``."""
        ...  # pragma: no cover - protocol


@dataclass
class CoreDesign:
    """Per-core outcome of the partitioned design."""

    index: int
    taskset: TaskSet
    s_min: SpeedupResult
    resetting: Optional[ResettingResult]

    @property
    def u_lo(self) -> float:
        return self.taskset.u_lo_system


@dataclass
class PartitionedDesign:
    """A complete multi-core deployment.

    Attributes
    ----------
    cores:
        Per-core task sets with their exact analysis results.
    speedup_cap:
        The per-core speedup cap the admission used.
    max_s_min:
        The largest *finite* per-core requirement (provision the boost
        for this).  Cores whose requirement is non-finite — an edge set
        whose exact analysis reports ``inf`` despite passing the capped
        admission — are excluded rather than letting ``inf`` poison the
        provisioning figure.
    max_delta_r:
        The slowest per-core recovery at the cap.
    """

    cores: List[CoreDesign]
    speedup_cap: float

    @property
    def max_s_min(self) -> float:
        finite = [
            c.s_min.s_min
            for c in self.cores
            if c.taskset and math.isfinite(c.s_min.s_min)
        ]
        return max(finite) if finite else 0.0

    @property
    def max_delta_r(self) -> float:
        values = [
            c.resetting.delta_r for c in self.cores if c.resetting is not None
        ]
        return max(values) if values else 0.0

    @property
    def used_cores(self) -> int:
        return sum(1 for c in self.cores if len(c.taskset) > 0)

    def assignment(self) -> Dict[str, int]:
        """``task name -> core index`` mapping."""
        return {
            task.name: core.index for core in self.cores for task in core.taskset
        }

    def table(self) -> str:
        """Per-core summary table."""
        header = f"{'core':>5} {'tasks':>6} {'U_LO':>7} {'s_min':>8} {'Delta_R':>9}"
        lines = [header, "-" * len(header)]
        for core in self.cores:
            dr = core.resetting.delta_r if core.resetting else float("nan")
            lines.append(
                f"{core.index:>5d} {len(core.taskset):>6d} {core.u_lo:>7.3f} "
                f"{core.s_min.s_min:>8.3f} {dr:>9.3f}"
            )
        return "\n".join(lines)


def _partition_with(
    taskset: TaskSet,
    n_cores: int,
    admission: AdmissionTest,
    heuristic: str,
    what: str,
) -> List[TaskSet]:
    if n_cores < 1:
        raise PartitioningError(f"need at least one core, got {n_cores}")
    if heuristic not in _HEURISTICS:
        raise PartitioningError(f"unknown heuristic {heuristic!r}")

    bins: List[List[MCTask]] = [[] for _ in range(n_cores)]
    order = sorted(
        taskset, key=lambda t: t.utilization(Criticality.LO), reverse=True
    )
    all_cores = list(range(n_cores))
    for task in order:
        candidates = admission.admitting_cores(bins, task, all_cores)
        if not candidates:
            raise PartitioningError(
                f"task {task.name!r} fits on no core ({n_cores} cores, {what})"
            )
        if heuristic == "first_fit":
            chosen = candidates[0]
        elif heuristic == "worst_fit":
            chosen = min(
                candidates, key=lambda i: sum(t.c_lo / t.t_lo for t in bins[i])
            )
        else:  # best_fit
            chosen = max(
                candidates, key=lambda i: sum(t.c_lo / t.t_lo for t in bins[i])
            )
        bins[chosen].append(task)
    return [
        TaskSet(tasks, name=f"{taskset.name}|core{i}") for i, tasks in enumerate(bins)
    ]


def partition_tasks(
    taskset: TaskSet,
    n_cores: int,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
    engine: str = "population",
) -> List[TaskSet]:
    """Assign every task to one of ``n_cores`` cores.

    ``engine`` selects the admission backend (``"population"`` batches
    each task's per-core trials through the lockstep kernels,
    ``"scalar"`` runs the per-set analysis per trial); the partitioning
    decisions are byte-identical either way.

    Raises :class:`PartitioningError` when some task fits nowhere under
    the per-core admission test.
    """
    if speedup_cap <= 0.0:
        raise PartitioningError(f"speedup cap must be positive, got {speedup_cap}")
    if engine not in ADMISSION_ENGINES:
        raise PartitioningError(
            f"admission engine must be one of {ADMISSION_ENGINES}, got {engine!r}"
        )
    admission = SpeedupAdmission(speedup_cap, engine=engine)
    return _partition_with(
        taskset, n_cores, admission, heuristic, f"cap {speedup_cap:g}"
    )


def partition_tasks_edf_vd_degraded(
    taskset: TaskSet,
    n_cores: int,
    *,
    y: float = 2.0,
    rungs: Optional[Mapping[str, "Rung"]] = None,
    heuristic: str = "first_fit",
) -> List[TaskSet]:
    """Partition under the EDF-VD-with-degraded-quality admission.

    Same heuristic loop as :func:`partition_tasks`, but a core admits a
    task iff its set passes the unit-speed degraded-quality EDF-VD test
    (:func:`repro.baselines.edf_vd_degraded.edf_vd_degraded_schedulable`
    with factor ``y`` and per-task quality ``rungs``) — the no-speedup
    baseline of the region maps.
    """
    admission = EdfVdDegradedAdmission(y=y, rungs=rungs)
    return _partition_with(
        taskset, n_cores, admission, heuristic, f"EDF-VD-degraded y={y:g}"
    )


def partitioned_design(
    taskset: TaskSet,
    n_cores: int,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
    evaluate_at_cap: bool = True,
    engine: str = "population",
) -> PartitionedDesign:
    """Partition and fully analyse every core.

    ``evaluate_at_cap`` computes each core's ``Delta_R`` at the common
    cap (uniform provisioning); otherwise at the core's own ``s_min``
    times 1.01, clamped below by ``1 + 1e-6`` (heterogeneous
    provisioning).  The clamp is part of the contract: a core whose
    tasks are so light that ``s_min < 1`` is still provisioned at a
    (marginal) *speedup* — recovery is never evaluated at a slowdown,
    which Corollary 5 does not model.
    """
    partitions = partition_tasks(
        taskset,
        n_cores,
        speedup_cap=speedup_cap,
        heuristic=heuristic,
        engine=engine,
    )
    cores: List[CoreDesign] = []
    for index, core_set in enumerate(partitions):
        requirement = min_speedup(core_set)
        reset = None
        if len(core_set) and math.isfinite(requirement.s_min):
            s = (
                speedup_cap
                if evaluate_at_cap
                else max(requirement.s_min * 1.01, 1.0 + 1e-6)
            )
            reset = resetting_time(core_set, s)
        cores.append(
            CoreDesign(index=index, taskset=core_set, s_min=requirement, resetting=reset)
        )
    return PartitionedDesign(cores=cores, speedup_cap=speedup_cap)


def min_cores(
    taskset: TaskSet,
    *,
    speedup_cap: float = 2.0,
    heuristic: str = "first_fit",
    max_cores: int = 64,
    engine: str = "population",
) -> int:
    """Smallest core count the heuristic can partition ``taskset`` onto."""
    for n in range(1, max_cores + 1):
        try:
            partition_tasks(
                taskset,
                n,
                speedup_cap=speedup_cap,
                heuristic=heuristic,
                engine=engine,
            )
            return n
        except PartitioningError:
            continue
    raise PartitioningError(
        f"not partitionable within {max_cores} cores (cap {speedup_cap:g})"
    )
