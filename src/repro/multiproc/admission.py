"""Per-core admission tests for partitioned deployment.

A partitioning heuristic asks, for each task in turn, *which cores can
take it* — one trial set per core.  The answers are the expensive part
of partitioning: the paper's own admission (LO-mode EDF feasibility at
nominal speed + Theorem-2 requirement within the per-core speedup cap)
runs two demand-curve scans per trial, so a 50-task set on 8 cores asks
for hundreds of scans.

Two interchangeable admission engines answer the same question:

* ``"scalar"`` — the reference: one
  :func:`~repro.analysis.schedulability.lo_mode_schedulable` plus one
  :func:`~repro.analysis.speedup.min_speedup` call per (core, candidate)
  trial, exactly the pre-rewrite behaviour.
* ``"population"`` — kernel-backed: all of a task's per-core trial sets
  compile into one ragged struct-of-arrays population and both scans run
  in lockstep (:func:`repro.analysis.population.lo_mode_schedulable_many`
  / :func:`~repro.analysis.population.min_speedup_many`), sharing each
  round's breakpoint generation and fused demand kernels across every
  core.  The lockstep scans are bit-exact mirrors of the per-set scans,
  so **both engines admit exactly the same cores** — partitioning
  decisions are byte-identical (property-tested on seeded populations).

Identical-content trials are evaluated once: every still-empty core
offers the same trial set ``{candidate}``, so one verdict covers all of
them on either engine (the analysis is deterministic, so this is a pure
dispatch saving, not a behaviour change).

The :class:`EdfVdDegradedAdmission` gives the same batched interface to
the no-speedup baseline — per-core EDF-VD with degraded quality
guarantees — so the comparison experiment partitions both schemes
through one heuristic loop.

All admission objects count their evaluated trials into
:data:`repro.analysis.kernels.PERF` (``admission_trials``), which the
pipeline ships back per chunk and the metrics registry surfaces as
``kernels.admission_trials``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

from repro.analysis.kernels import PERF
from repro.analysis.population import (
    lo_mode_schedulable_many,
    min_speedup_many,
)
from repro.analysis.schedulability import lo_mode_schedulable
from repro.analysis.speedup import min_speedup
from repro.baselines.edf_vd_degraded import edf_vd_degraded_schedulable
from repro.model.task import MCTask
from repro.model.taskset import TaskSet

if TYPE_CHECKING:  # type-only: importing repro.sim at runtime would
    from repro.sim.degradation import Rung  # cycle through repro.api.

#: Admission engines accepted by :func:`speedup_admission` and the
#: partitioning entry points.
ADMISSION_ENGINES = ("population", "scalar")

#: Relative slack on the per-core speedup-cap comparison (matches the
#: verdict tolerance used by the analysis layer).
_CAP_RTOL = 1e-9


class SpeedupAdmission:
    """The paper's dual-mode admission under a per-core speedup cap.

    A candidate fits on a core iff the core's task set plus the
    candidate (i) stays LO-mode EDF-feasible at nominal speed and
    (ii) keeps its Theorem-2 minimum HI-mode speedup within
    ``speedup_cap``.
    """

    def __init__(self, speedup_cap: float, *, engine: str = "population") -> None:
        if speedup_cap <= 0.0:
            raise ValueError(f"speedup cap must be positive, got {speedup_cap}")
        if engine not in ADMISSION_ENGINES:
            raise ValueError(
                f"admission engine must be one of {ADMISSION_ENGINES}, "
                f"got {engine!r}"
            )
        self.speedup_cap = float(speedup_cap)
        self.engine = engine

    def admitting_cores(
        self,
        bins: Sequence[Sequence[MCTask]],
        candidate: MCTask,
        core_indices: Sequence[int],
    ) -> List[int]:
        """The subset of ``core_indices`` whose core admits ``candidate``.

        ``bins[i]`` holds core ``i``'s already-assigned tasks.  Returned
        in ascending core order (the order heuristics tie-break on).
        """
        if not core_indices:
            return []
        # Deduplicate identical trial contents: all empty cores share the
        # verdict of the single-task trial {candidate}.
        empty = [i for i in core_indices if not bins[i]]
        loaded = [i for i in core_indices if bins[i]]
        trial_owners: List[List[int]] = []
        trials: List[TaskSet] = []
        if empty:
            trial_owners.append(empty)
            trials.append(TaskSet([candidate]))
        for i in loaded:
            trial_owners.append([i])
            trials.append(TaskSet(list(bins[i]) + [candidate]))
        verdicts = self._admit_trials(trials)
        admitted = [
            i
            for owners, ok in zip(trial_owners, verdicts)
            if ok
            for i in owners
        ]
        return sorted(admitted)

    def _admit_trials(self, trials: List[TaskSet]) -> List[bool]:
        PERF.admission_trials += len(trials)
        if self.engine == "scalar":
            return [self._admit_scalar(trial) for trial in trials]
        verdicts = [False] * len(trials)
        lo_ok = lo_mode_schedulable_many(trials)
        feasible = [k for k, ok in enumerate(lo_ok) if ok]
        if feasible:
            speedups = min_speedup_many([trials[k] for k in feasible])
            for k, result in zip(feasible, speedups):
                verdicts[k] = result.s_min <= self.speedup_cap * (1.0 + _CAP_RTOL)
        return verdicts

    def _admit_scalar(self, trial: TaskSet) -> bool:
        if not lo_mode_schedulable(trial):
            return False
        return min_speedup(trial).s_min <= self.speedup_cap * (1.0 + _CAP_RTOL)


class EdfVdDegradedAdmission:
    """Per-core EDF-VD-with-degraded-quality admission (no speedup).

    A candidate fits on a core iff the core's task set plus the
    candidate passes the Liu-et-al. degraded-quality EDF-VD test on a
    unit-speed core — the utilization-based baseline the speedup scheme
    is mapped against.  The test is closed form, so there is nothing to
    batch; the class exists to give both schemes one admission
    interface.
    """

    def __init__(
        self,
        *,
        y: float = 2.0,
        rungs: Optional[Mapping[str, "Rung"]] = None,
    ) -> None:
        if not (y >= 1.0):
            raise ValueError(f"degradation factor y must be >= 1 (or inf), got {y}")
        self.y = float(y)
        self.rungs = dict(rungs) if rungs is not None else None

    def admitting_cores(
        self,
        bins: Sequence[Sequence[MCTask]],
        candidate: MCTask,
        core_indices: Sequence[int],
    ) -> List[int]:
        """The subset of ``core_indices`` whose core admits ``candidate``."""
        admitted: List[int] = []
        seen_empty: Optional[bool] = None
        for i in core_indices:
            if not bins[i] and seen_empty is not None:
                if seen_empty:
                    admitted.append(i)
                continue
            PERF.admission_trials += 1
            trial = TaskSet(list(bins[i]) + [candidate])
            ok = edf_vd_degraded_schedulable(
                trial, y=self.y, rungs=self.rungs
            ).schedulable
            if not bins[i]:
                seen_empty = ok
            if ok:
                admitted.append(i)
        return admitted


def speedup_admission(
    speedup_cap: float, *, engine: str = "population"
) -> SpeedupAdmission:
    """Build the default (paper) admission test for ``partition_tasks``."""
    return SpeedupAdmission(speedup_cap, engine=engine)


def finite_or_none(value: float) -> Optional[float]:
    """``value`` when finite, else ``None`` (report-payload helper)."""
    return value if math.isfinite(value) else None
