"""Partitioned multiprocessor deployment (extension).

The paper's analysis is per-processor; consolidating avionics/automotive
functions (its Section-I motivation) usually means *partitioned*
scheduling: assign each task statically to a core, then run the
uniprocessor protocol — including per-core temporary speedup —
independently on every core.  This package provides the partitioning
heuristics, the per-core admission engines (scalar and
population-kernel-batched — byte-identical decisions), and the
aggregated multi-core design report.
"""

from repro.multiproc.admission import (
    ADMISSION_ENGINES,
    EdfVdDegradedAdmission,
    SpeedupAdmission,
    speedup_admission,
)
from repro.multiproc.partition import (
    CoreDesign,
    PartitionedDesign,
    PartitioningError,
    min_cores,
    partition_tasks,
    partition_tasks_edf_vd_degraded,
    partitioned_design,
)

__all__ = [
    "ADMISSION_ENGINES",
    "EdfVdDegradedAdmission",
    "SpeedupAdmission",
    "speedup_admission",
    "CoreDesign",
    "PartitionedDesign",
    "PartitioningError",
    "min_cores",
    "partition_tasks",
    "partition_tasks_edf_vd_degraded",
    "partitioned_design",
]
