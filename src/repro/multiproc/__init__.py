"""Partitioned multiprocessor deployment (extension).

The paper's analysis is per-processor; consolidating avionics/automotive
functions (its Section-I motivation) usually means *partitioned*
scheduling: assign each task statically to a core, then run the
uniprocessor protocol — including per-core temporary speedup —
independently on every core.  This package provides the partitioning
heuristics and the aggregated multi-core design report.
"""

from repro.multiproc.partition import (
    PartitionedDesign,
    PartitioningError,
    partition_tasks,
    partitioned_design,
)

__all__ = [
    "PartitionedDesign",
    "PartitioningError",
    "partition_tasks",
    "partitioned_design",
]
