"""One snapshot for every counter the system keeps.

Before this module the system had three disconnected telemetry islands:
the kernel :data:`~repro.analysis.kernels.PERF` counters (per process),
:class:`~repro.pipeline.runner.BatchStats` (per run) and the result
cache's hit/miss totals (per cache).  :class:`MetricsRegistry` merges
them — plus per-worker chunk timings — into a single JSON document with
a deliberate split:

``counters``
    Deterministic totals: a pure function of the work performed, byte
    identical across runs and across job counts (worker-local kernel
    counters are shipped back with each chunk and summed, so the total
    is independent of how chunks were distributed).
``timing``
    Everything derived from the clock or from process identity: wall
    seconds, kernel seconds, per-worker chunk counts/items/seconds.

:meth:`MetricsRegistry.strip_timing` drops the ``timing`` section, which
is exactly the invariance the pipeline test suite pins down:
``jobs=1`` and ``jobs=N`` snapshots agree on every counter.

The registry is a passive sink — callers push values in; it imports
nothing from the rest of ``repro``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

PathLike = Union[str, Path]

#: Version stamped into every snapshot.
METRICS_SCHEMA_VERSION = 1

#: Kernel counter fields that measure time rather than work; they are
#: routed into the ``timing`` section by :meth:`MetricsRegistry.
#: record_kernel_perf`.
KERNEL_TIMING_FIELDS = ("kernel_seconds",)


class MetricsRegistry:
    """Accumulates namespaced counters and timings; snapshots to JSON.

    Counter names are dotted (``"kernels.cells"``, ``"batch.computed"``,
    ``"cache.hits"``) so the snapshot stays flat and greppable.  All
    ``record_*`` helpers are additive: a registry can aggregate several
    runs, several workers, or both.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._timings: Dict[str, float] = {}
        self._workers: Dict[str, Dict[str, float]] = {}

    # -- primitive sinks ------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the deterministic counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def timing(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the wall-clock total ``name``."""
        self._timings[name] = self._timings.get(name, 0.0) + seconds

    def counter(self, name: str, default: float = 0) -> float:
        """Current value of a counter (0 when never touched)."""
        return self._counters.get(name, default)

    # -- island adapters ------------------------------------------------
    def record_kernel_perf(self, delta: Dict[str, Any]) -> None:
        """Fold a kernel perf-counter delta (``PERF.delta_since``) in.

        Work counters land under ``kernels.*``; the wall-clock fields
        (:data:`KERNEL_TIMING_FIELDS`) land in the timing section.
        """
        for key, value in delta.items():
            if key in KERNEL_TIMING_FIELDS:
                self.timing(f"kernels.{key}", float(value))
            else:
                self.count(f"kernels.{key}", value)

    def record_batch_stats(self, stats: Dict[str, int]) -> None:
        """Fold a :class:`BatchStats` ``to_dict`` payload in (``batch.*``)."""
        for key, value in stats.items():
            self.count(f"batch.{key}", value)

    def record_fault_stats(self, stats: Dict[str, int]) -> None:
        """Fold a :class:`~repro.pipeline.fault_tolerance.FaultStats`
        ``to_dict`` payload in (``faults.*``).

        Every counter is zero on an undisturbed run, so the clean-path
        snapshot stays jobs-invariant; under faults they record the
        recovery schedule (retries, watchdog timeouts, pool rebuilds,
        corruption detections and IO-error retries).
        """
        for key, value in stats.items():
            self.count(f"faults.{key}", value)

    def record_cache(self, hits: int, misses: int) -> None:
        """Fold result-cache lookup totals in (``cache.*``)."""
        self.count("cache.hits", hits)
        self.count("cache.misses", misses)

    def record_chunk(self, worker: str, items: int, seconds: float) -> None:
        """Record one settled chunk for per-worker breakdowns.

        ``worker`` identifies the process (``"inline"`` for the serial
        path, ``"pid<n>"`` for pool workers).  Worker identity and chunk
        distribution depend on the job count, so the whole breakdown
        lives in the timing section.
        """
        entry = self._workers.setdefault(
            worker, {"chunks": 0, "items": 0, "seconds": 0.0}
        )
        entry["chunks"] += 1
        entry["items"] += items
        entry["seconds"] += seconds

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The full JSON-ready snapshot (see module docstring)."""
        return {
            "metrics_schema_version": METRICS_SCHEMA_VERSION,
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "timing": {
                **{key: self._timings[key] for key in sorted(self._timings)},
                "workers": {
                    worker: dict(self._workers[worker])
                    for worker in sorted(self._workers)
                },
            },
        }

    @staticmethod
    def strip_timing(snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """A snapshot without its ``timing`` section.

        What remains is deterministic: identical across runs and across
        ``jobs=1`` / ``jobs=N`` for the same request population.
        """
        return {key: value for key, value in snapshot.items() if key != "timing"}

    def write_json(self, path: PathLike) -> Path:
        """Write the snapshot as stable (sorted-key) indented JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        """One-line human summary of the headline counters."""
        parts = []
        for name in ("batch.total", "batch.computed", "batch.failures",
                     "cache.hits", "kernels.kernel_evals", "kernels.cells"):
            value = self._counters.get(name)
            if value is not None:
                parts.append(f"{name}={value:g}")
        wall = self._timings.get("batch.wall_seconds")
        if wall is not None:
            parts.append(f"wall={wall:.2f}s")
        return " ".join(parts) if parts else "(no metrics recorded)"

    def __len__(self) -> int:
        return len(self._counters)
