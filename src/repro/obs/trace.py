"""Span-based tracing: nested wall-time, counts and tags per operation.

The analysis stack is pseudo-polynomial, so per-stage cost varies wildly
across task sets — a tuning bisection may dominate one item while the
resetting scan dominates the next.  Spans make that visible::

    from repro.obs import trace

    with trace.span("tuning.bisect", engine="compiled") as sp:
        ...
        sp.add("probes")          # bump a counter on the open span

Tracing is **off by default** and costs one attribute check plus a
shared no-op context manager per instrumented call while disabled, so
instrumentation can stay in hot analysis paths permanently.  When
enabled (:func:`enable`), every closed span appends one JSON-ready
record to the process-wide tracer:

``{"name", "path", "depth", "tags", "counts", "t_start", "duration_s"}``

``path`` is the ``/``-joined chain of open span names (spans nest via a
thread-local stack), so a record is self-describing without record
pointers.  ``t_start`` and ``duration_s`` are the only timing fields;
everything else is a deterministic function of the work performed —
:func:`strip_timing` removes them so tests can compare traces across
runs and job counts.

Worker processes each own a tracer (module state is per-process); the
batch runner enables tracing inside the worker, drains the records and
ships them back with each chunk, exactly like the kernel perf counters.

This module deliberately imports nothing from the rest of ``repro`` —
the observability layer observes; it does not participate.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

#: Version stamped into every span record written to JSONL.
TRACE_SCHEMA_VERSION = 1

#: The record fields that depend on the clock rather than on the work
#: performed; :func:`strip_timing` removes exactly these.
TIMING_FIELDS = ("t_start", "duration_s")


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, key: str = "count", value: int = 1) -> None:
        pass

    def tag(self, **tags: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One live span; use as a context manager (see module docstring)."""

    __slots__ = ("name", "tags", "counts", "_tracer", "_t0", "_path", "_depth")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.counts: Dict[str, int] = {}
        self._tracer = tracer
        self._t0 = 0.0
        self._path = name
        self._depth = 0

    def add(self, key: str = "count", value: int = 1) -> None:
        """Bump a named counter on this span."""
        self.counts[key] = self.counts.get(key, 0) + value

    def tag(self, **tags: Any) -> None:
        """Attach (JSON-ready) key/value tags to this span."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            parent = stack[-1]
            self._path = f"{parent._path}/{self.name}"
            self._depth = parent._depth + 1
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        self._tracer._record(
            {
                "name": self.name,
                "path": self._path,
                "depth": self._depth,
                "tags": self.tags,
                "counts": self.counts,
                "t_start": self._t0,
                "duration_s": duration,
            }
        )
        return False


class Tracer:
    """Collects span records; one per process (see :data:`TRACER`)."""

    def __init__(self) -> None:
        self.enabled = False
        self._records: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **tags: Any) -> Union[Span, _NullSpan]:
        """Open a span (or the shared no-op span while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, tags)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    # -- control --------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- record access --------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Copy of the records collected so far (closed spans, in close order)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all collected records (worker hand-off)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def extend(self, records: List[Dict[str, Any]]) -> None:
        """Append records drained from another tracer (worker hand-back)."""
        with self._lock:
            self._records.extend(records)

    def clear(self) -> None:
        self.drain()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def write_jsonl(self, path: PathLike) -> int:
        """Write one JSON object per record; returns the record count.

        The first line is a header carrying the schema version, so a
        reader never has to guess the layout.
        """
        records = self.records()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            fh.write(
                json.dumps(
                    {"trace_schema_version": TRACE_SCHEMA_VERSION, "spans": len(records)}
                )
                + "\n"
            )
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def strip_timing(record: Dict[str, Any]) -> Dict[str, Any]:
    """A record (or header line) without its wall-clock fields.

    Everything that survives is a deterministic function of the work
    performed, so stripped traces compare equal across runs.
    """
    return {key: value for key, value in record.items() if key not in TIMING_FIELDS}


#: The process-wide tracer every instrumented module uses.
TRACER = Tracer()


# Module-level conveniences so call sites read `trace.span(...)`.
def span(name: str, **tags: Any) -> Union[Span, _NullSpan]:
    """Open a span on the process tracer (no-op while disabled)."""
    if not TRACER.enabled:
        return NULL_SPAN
    return Span(TRACER, name, tags)


def enable() -> None:
    """Turn span collection on (process-wide)."""
    TRACER.enable()


def disable() -> None:
    """Turn span collection off (instrumentation reverts to no-ops)."""
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def records() -> List[Dict[str, Any]]:
    return TRACER.records()


def drain() -> List[Dict[str, Any]]:
    return TRACER.drain()


def extend(new_records: List[Dict[str, Any]]) -> None:
    TRACER.extend(new_records)


def clear() -> None:
    TRACER.clear()


def write_jsonl(path: PathLike) -> int:
    return TRACER.write_jsonl(path)
