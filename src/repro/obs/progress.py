"""Progress line with an ETA derived from settled-item timings.

:class:`ProgressLine` is a drop-in ``progress(done, total)`` callback
for :class:`~repro.pipeline.runner.BatchRunner`: it timestamps every
settle, estimates the rate over a sliding window of recent settles (so
the ETA tracks the current mix of cache hits and slow analyses rather
than the whole-run average), and renders either an in-place ``\\r`` line
(TTY) or one line per update (pipes, CI logs).

Pure stdlib, no repro imports — usable by any long loop, not just the
batch pipeline.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Deque, Optional, TextIO, Tuple


def format_eta(seconds: float) -> str:
    """Compact human ETA: ``42s``, ``3m10s``, ``2h05m``."""
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


class ProgressLine:
    """Render ``done/total`` with rate and ETA to a stream.

    Parameters
    ----------
    label:
        Noun after the counts (``"analysed"``).
    stream:
        Defaults to ``sys.stderr``.
    window:
        Number of recent settles the rate/ETA estimate uses.
    min_interval:
        Minimum seconds between non-final renders (keeps per-item
        printing from flooding a log on fast cache-hit storms).
    """

    def __init__(
        self,
        label: str = "done",
        stream: Optional[TextIO] = None,
        window: int = 50,
        min_interval: float = 0.1,
    ) -> None:
        self.label = label
        self._stream = stream if stream is not None else sys.stderr
        self._settles: Deque[Tuple[float, int]] = deque(maxlen=max(2, window))
        self._min_interval = min_interval
        self._last_render = -float("inf")
        self._isatty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._open = False
        self._start = time.perf_counter()

    # -- estimation ------------------------------------------------------
    def eta_seconds(self, done: int, total: int) -> float:
        """Remaining-time estimate from the recent settle window."""
        if done >= total:
            return 0.0
        if len(self._settles) >= 2:
            (t0, d0), (t1, d1) = self._settles[0], self._settles[-1]
            span, items = t1 - t0, d1 - d0
            if items > 0 and span > 0:
                return (total - done) * span / items
        elapsed = time.perf_counter() - self._start
        if done > 0 and elapsed > 0:
            return (total - done) * elapsed / done
        return float("inf")

    # -- the BatchRunner callback ---------------------------------------
    def update(self, done: int, total: int) -> None:
        now = time.perf_counter()
        self._settles.append((now, done))
        final = done >= total
        if not final and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        eta = self.eta_seconds(done, total)
        rate = ""
        if len(self._settles) >= 2:
            (t0, d0), (t1, d1) = self._settles[0], self._settles[-1]
            if t1 > t0:
                rate = f", {(d1 - d0) / (t1 - t0):.1f}/s"
        pct = 100.0 * done / total if total else 100.0
        line = (
            f"  {done}/{total} {self.label} ({pct:.0f}%{rate}, "
            f"eta {format_eta(eta)})"
        )
        if self._isatty:
            self._stream.write("\r" + line + "\x1b[K")
            self._open = True
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        """Terminate an in-place line (no-op on non-TTY streams)."""
        if self._open:
            self._stream.write("\n")
            self._stream.flush()
            self._open = False
