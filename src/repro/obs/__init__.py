"""Unified observability layer: tracing, metrics, progress.

Three tools, one constraint — observe without participating (this
package imports nothing from the rest of ``repro``, enforced by lint
and test):

* :mod:`repro.obs.trace` — span-based tracing (``trace.span("...")``
  context managers with nested wall-time, counts and tags), off by
  default with guard-check-only overhead, JSONL export.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the single
  snapshot unifying kernel perf counters, batch statistics, cache
  hit/miss totals and per-worker chunk timings, with a deterministic
  ``counters`` section and a clock-dependent ``timing`` section.
* :mod:`repro.obs.progress` — :class:`ProgressLine`, a
  ``progress(done, total)`` callback rendering rate and ETA from
  settled-item timings.

Wired through ``repro-mc batch --metrics out.json --trace trace.jsonl``
and ``BatchRunner(metrics=...)``; see DESIGN.md section 10 for the span
taxonomy.
"""

from repro.obs import trace
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.progress import ProgressLine, format_eta
from repro.obs.trace import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "ProgressLine",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "format_eta",
    "trace",
]
