"""repro-lint: whole-program static analysis for this reproduction.

The analysis core makes promises the test suite can only sample:

* Theorem 2 / Corollary 5 demand-bound comparisons are **exact** — a
  float ``==`` in the wrong place silently turns a proof into a
  coin-flip (RL002);
* pipeline output is byte-identical for ``jobs=1`` and ``jobs=N`` and
  cache keys are stable across runs, which requires every source of
  entropy (wall clock, unseeded RNG, process identity, set iteration
  order) to stay out of fingerprint-, cache- and counter-affecting
  code (RL003, RL009);
* functions shipped to the :class:`~repro.pipeline.runner.BatchRunner`
  process pool must be picklable and must not communicate through
  module-level globals (RL004);
* the layering that makes all of this auditable — ``repro.obs``
  observes without participating, experiments speak only to the
  ``repro.api`` facade — must hold in every module, not just the ones a
  test happens to import (RL001);
* the public API surface stays documented and fully typed, and
  deprecated shims actually warn (RL005);
* serialized surfaces never drift without a version bump (RL006), the
  kernels keep their float64/row-order discipline (RL007), and every
  settled pipeline item is counted exactly once (RL008).

Since v2 the engine runs in two phases: it first indexes every file
into a :class:`~repro.lint.model.ProjectModel` (import graph, name
resolver, call graph, per-function dataflow), then runs rules with
that whole-program context.  Results are cached incrementally
(:mod:`repro.lint.cache`): a warm run over an unchanged tree
re-analyzes nothing, and an edit re-analyzes only the file's reverse
dependency cone.  Suppressions (``# repro-lint: ignore[RL002]
reason``) require a reason; grandfathered findings live in a committed
JSON baseline (:mod:`repro.lint.baseline`); reporters render text,
JSON and SARIF 2.1.0 (:mod:`repro.lint.report`,
:mod:`repro.lint.sarif`).  The ``repro-mc lint`` subcommand
(:mod:`repro.lint.cli`) is the entry point used by CI.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.contracts import compute_contracts
from repro.lint.engine import (
    Finding,
    LintContext,
    LintRun,
    Rule,
    available_rules,
    lint_file,
    lint_paths,
    lint_project,
    register,
)
from repro.lint.model import ProjectModel, build_model
from repro.lint.report import render_json, render_text
from repro.lint.sarif import render_sarif

# Importing the rule pack registers every rule with the engine.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintRun",
    "ProjectModel",
    "Rule",
    "available_rules",
    "build_model",
    "compute_contracts",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
