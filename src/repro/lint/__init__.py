"""repro-lint: domain-specific static analysis for this reproduction.

The analysis core makes promises the test suite can only sample:

* Theorem 2 / Corollary 5 demand-bound comparisons are **exact** — a
  float ``==`` in the wrong place silently turns a proof into a
  coin-flip (RL002);
* pipeline output is byte-identical for ``jobs=1`` and ``jobs=N`` and
  cache keys are stable across runs, which requires every source of
  entropy (wall clock, unseeded RNG, process identity) to stay out of
  fingerprint-, cache- and counter-affecting code (RL003);
* functions shipped to the :class:`~repro.pipeline.runner.BatchRunner`
  process pool must be picklable and must not communicate through
  module-level globals (RL004);
* the layering that makes all of this auditable — ``repro.obs``
  observes without participating, experiments speak only to the
  ``repro.api`` facade — must hold in every module, not just the ones a
  test happens to import (RL001);
* the public API surface stays documented and fully typed, and
  deprecated shims actually warn (RL005).

``repro-lint`` enforces those invariants statically over the whole
source tree.  It is a small AST engine (:mod:`repro.lint.engine`) with a
rule registry (:mod:`repro.lint.rules`), per-line suppression comments
(``# repro-lint: ignore[RL002]``), a committed JSON baseline for
grandfathered findings (:mod:`repro.lint.baseline`) and text/JSON
reporters (:mod:`repro.lint.report`).  The ``repro-mc lint`` subcommand
(:mod:`repro.lint.cli`) is the entry point used by CI.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    available_rules,
    lint_file,
    lint_paths,
    register,
)
from repro.lint.report import render_json, render_text

# Importing the rule pack registers every rule with the engine.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "Rule",
    "available_rules",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
