"""RL009: unordered iteration must not reach serialized output.

Fingerprints, checkpoints, metrics snapshots and report files promise
byte-identical output across runs and across ``--jobs`` settings.  A
``for x in some_set`` (Python randomises set order between processes
via hash seeding), a ``d.items()`` walk feeding a digest, or a raw
``Path.glob`` (filesystem order is mount-dependent) breaks that
promise in the one place tests rarely look — the serialization path.

Within the serialization-adjacent modules (fingerprint, pipeline, io,
report, service schema, obs metrics/trace) the rule flags, at
*order-sensitive consumption sites* (a ``for`` loop, a comprehension,
``list``/``tuple``/``enumerate``/``reversed``, ``np.array`` /
``np.fromiter``, ``str.join``, argument unpacking):

* iteration over a **proven set value** (literal, ``set()`` call, set
  operator, or a name the dataflow pass tracks to one) — always;
* iteration over **filesystem enumeration** (``os.listdir`` /
  ``os.scandir`` / ``Path.glob`` / ``rglob`` / ``iterdir``) — always;
* **dict traversal** (``.items()`` / ``.keys()`` / ``.values()`` or a
  bare dict in a ``for``) — only inside functions that contain a
  serialization sink (``json.dump*`` without ``sort_keys=True``, a
  hashlib ``update``, ``pickle.dump*``, or any ``write*`` call):
  insertion order is deterministic per process, but canonical output
  wants an explicit ``sorted(...)`` the reader can see.

Wrapping the iterable in ``sorted(...)`` (or ``np.sort``) silences the
rule by construction; order-insensitive reducers (``sum``/``min``/
``max``/``len``/``any``/``all``/``set``/``in``) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.dataflow import DICT, DICT_VIEW, DIGEST, SET, Dataflow
from repro.lint.engine import Finding, LintContext, register
from repro.lint.model import iter_functions

CODE = "RL009"

_SCOPE_PREFIXES = (
    "repro.model.fingerprint",
    "repro.pipeline",
    "repro.io",
    "repro.report",
    "repro.service.schema",
    "repro.obs.metrics",
    "repro.obs.trace",
)

_DICT_VIEW_METHODS = {"items", "keys", "values"}

_FS_METHODS = {"glob", "rglob", "iterdir"}
_FS_CALLS = {"os.listdir", "os.scandir"}

#: Builtin/numpy consumers whose first argument is consumed in order.
_ORDERED_CONSUMERS = {
    "list", "tuple", "enumerate", "reversed",
    "numpy.array", "numpy.asarray", "numpy.fromiter",
    "numpy.concatenate",
}

_SINK_JSON = {"json.dump", "json.dumps"}
_SINK_ALWAYS = {"pickle.dump", "pickle.dumps"}


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _SCOPE_PREFIXES
    )


def _walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested defs/lambdas."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield child
        yield from _walk_shallow(child)


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _has_serialization_sink(
    root: ast.AST, aliases: Dict[str, str], flow: Dataflow
) -> bool:
    for node in _walk_shallow(root):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if callee is not None and callee.startswith("write"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "update"
            and flow.value_of(func.value).kind == DIGEST
        ):
            return True
        dotted = _dotted(func, aliases)
        if dotted in _SINK_ALWAYS:
            return True
        if dotted in _SINK_JSON:
            sort_keys = next(
                (kw.value for kw in node.keywords if kw.arg == "sort_keys"),
                None,
            )
            if not (
                isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True
            ):
                return True
    return False


def _consumption_sites(
    root: ast.AST, aliases: Dict[str, str]
) -> Iterator[Tuple[ast.expr, str]]:
    """(iterated expression, how it is consumed) for one body."""
    for node in _walk_shallow(root):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for-loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, "comprehension"
        elif isinstance(node, ast.Starred):
            yield node.value, "argument unpacking"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "join":
                if node.args:
                    yield node.args[0], "str.join"
                continue
            dotted = _dotted(func, aliases)
            if dotted in _ORDERED_CONSUMERS and node.args:
                yield node.args[0], dotted.rsplit(".", 1)[-1] + "()"


def _is_dict_view_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _DICT_VIEW_METHODS
    )


def _is_fs_enumeration(
    expr: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr in _FS_METHODS:
        return func.attr
    dotted = _dotted(func, aliases)
    if dotted in _FS_CALLS:
        return dotted
    return None


def _check_body(
    context: LintContext,
    root: ast.AST,
    flow: Dataflow,
) -> Iterator[Finding]:
    aliases = context.info.aliases
    sinky = _has_serialization_sink(root, aliases, flow)
    for expr, how in _consumption_sites(root, aliases):
        fs_source = _is_fs_enumeration(expr, aliases)
        if fs_source is not None:
            yield context.finding(
                CODE, expr,
                f"{how} over {fs_source} results: filesystem enumeration "
                f"order is arbitrary; wrap in sorted(...)",
            )
            continue
        value = flow.value_of(expr)
        if value.kind == SET or isinstance(expr, (ast.Set, ast.SetComp)):
            yield context.finding(
                CODE, expr,
                f"{how} over a set: set order is process-dependent; wrap "
                f"in sorted(...) before it can reach serialized output",
            )
            continue
        if not sinky:
            continue
        if _is_dict_view_call(expr) or value.kind == DICT_VIEW:
            yield context.finding(
                CODE, expr,
                f"{how} over an unsorted dict view in a function that "
                f"serializes: iterate sorted(...) for canonical order",
            )
        elif value.kind == DICT and how == "for-loop":
            yield context.finding(
                CODE, expr,
                "for-loop over a dict in a function that serializes: "
                "iterate sorted(...) for canonical order",
            )


@register(CODE, "iteration order: set/dict/filesystem iteration feeding "
                "fingerprints, checkpoints or report serialization "
                "without an intervening sorted()")
def check_iteration_order(context: LintContext) -> Iterator[Finding]:
    if not _in_scope(context.module):
        return
    aliases = context.info.aliases
    module_flow = Dataflow.of_module(context.tree, aliases)
    yield from _check_body(context, context.tree, module_flow)
    for _name, fn in iter_functions(context.tree):
        flow = Dataflow.of_function(fn, aliases)
        yield from _check_body(context, fn, flow)
