"""The repro-lint rule pack; importing this package registers every rule.

==== =================================================================
Code Invariant protected
==== =================================================================
RL001 Layering: ``repro.obs`` imports nothing from the analysed stack;
      ``repro.experiments`` never touches ``repro.analysis`` internals
      (the :mod:`repro.api` facade is the only door).
RL002 Exactness: no ``==``/``!=``/``is`` on float-valued expressions in
      ``repro.analysis`` — demand-bound comparisons are proofs, so they
      use exact ``Fraction`` arithmetic, exactly-representable sentinel
      rewrites, or the kernels' documented tolerance scheme.
RL003 Determinism: no wall-clock, entropy or unseeded RNG in the
      fingerprint-, cache- and counter-affecting packages; pipeline
      output and MetricsRegistry counters must stay jobs-invariant.
RL004 Fork-safety: callables handed to a ``ProcessPoolExecutor`` are
      traversed transitively and flagged if they are unpicklable or
      communicate through module-level globals.
RL005 API surface: every ``repro.api`` export is annotated and
      documented; deprecation shims actually raise DeprecationWarning.
==== =================================================================
"""

from repro.lint.rules import (  # noqa: F401  (import registers the rules)
    api_surface,
    determinism,
    exactness,
    forksafety,
    layering,
)

__all__ = [
    "api_surface",
    "determinism",
    "exactness",
    "forksafety",
    "layering",
]
