"""The repro-lint rule pack; importing this package registers every rule.

==== =================================================================
Code Invariant protected
==== =================================================================
RL000 Suppression hygiene (engine-emitted): every ``# repro-lint:
      ignore[...]`` marker carries a justifying reason; reasonless
      markers are inert and flagged.
RL001 Layering: ``repro.obs`` imports nothing from the analysed stack;
      ``repro.experiments`` never touches ``repro.analysis`` internals
      (the :mod:`repro.api` facade is the only door).
RL002 Exactness: no ``==``/``!=``/``is`` on float-valued expressions in
      ``repro.analysis`` — demand-bound comparisons are proofs, so they
      use exact ``Fraction`` arithmetic, exactly-representable sentinel
      rewrites, or the kernels' documented tolerance scheme.
RL003 Determinism: no wall-clock, entropy or unseeded RNG in the
      fingerprint-, cache- and counter-affecting packages; pipeline
      output and MetricsRegistry counters must stay jobs-invariant.
RL004 Fork-safety: callables handed to a ``ProcessPoolExecutor`` are
      traversed transitively and flagged if they are unpicklable or
      communicate through module-level globals.
RL005 API surface: every ``repro.api`` export is annotated and
      documented; deprecation shims actually raise DeprecationWarning.
RL006 Contract drift: a serialized surface (payload fields, fingerprint
      encoding, cache entry, wire schema) changed without bumping its
      version constant against the committed ``lint-contracts.json``.
RL007 Dtype discipline: the bit-exact kernels stay float64 end to end,
      reduce via ``np.add.reduce`` (row-order contract), and never
      build arrays from unordered sets/dicts or inferred dtypes.
RL008 Exactly-once accounting: every settle path in the pipeline
      increments exactly one ``BatchStats`` disposition counter, and
      the five counters provably cover ``total``.
RL009 Iteration order: no set/dict/filesystem iteration feeds
      fingerprints, checkpoints or report serialization without an
      intervening ``sorted(...)``.
==== =================================================================
"""

from repro.lint.rules import (  # noqa: F401  (import registers the rules)
    accounting,
    api_surface,
    contract_drift,
    determinism,
    dtype_discipline,
    exactness,
    forksafety,
    iteration_order,
    layering,
)

__all__ = [
    "accounting",
    "api_surface",
    "contract_drift",
    "determinism",
    "dtype_discipline",
    "exactness",
    "forksafety",
    "iteration_order",
    "layering",
]
