"""RL006: serialized surfaces may not drift without a version bump.

Every byte the pipeline persists or serves lives under a version
constant: ``FINGERPRINT_VERSION`` (task-set digests),
``CHECKPOINT_VERSION`` (checkpoint records), ``CACHE_FORMAT_VERSION``
(result-cache entries) and ``WIRE_VERSION`` (the HTTP schema).  The
constants exist so old artifacts are *detected*, not misread — which
only works if every change to the serialized shape actually bumps the
constant.  Tests cannot see this class of bug: a new ``ReportPayload``
field round-trips fine against a fresh checkpoint and silently
misreads an old one.

The committed ``lint-contracts.json`` records, per surface, the SHA-256
of its canonical descriptor (:mod:`repro.lint.contracts`) and the
version constant's value at commit time.  This rule fires on exactly
one combination: the surface hash moved while the version did not.  A
bump alongside the change is the sanctioned path and stays silent —
regenerate the contract file with ``repro-mc lint --write-contracts``
as part of the same commit.

Findings anchor at the version constant's assignment, one per surface,
in the module that owns the constant.  Without a contract file the
rule is silent (fixture trees, fresh checkouts of a subtree).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.lint.contracts import SURFACES, surface_hash, surface_version
from repro.lint.engine import Finding, LintContext, register

CODE = "RL006"


def _committed(
    contracts: Dict[str, object], surface: str
) -> Optional[Dict[str, object]]:
    surfaces = contracts.get("surfaces")
    if not isinstance(surfaces, dict):
        return None
    entry = surfaces.get(surface)
    return entry if isinstance(entry, dict) else None


@register(CODE, "contract drift: serialized surface (payload fields, "
                "fingerprint encoding, wire schema) changed without "
                "bumping its version constant")
def check_contract_drift(context: LintContext) -> Iterator[Finding]:
    if context.contracts is None:
        return
    for surface, spec in SURFACES.items():
        anchor_module, constant_name = spec["version"]
        if context.module != anchor_module:
            continue  # one finding per surface, in the owning module
        committed = _committed(context.contracts, surface)
        if committed is None:
            continue
        version = surface_version(context.model, surface)
        current_hash = surface_hash(context.model, surface)
        if version is None or current_hash is None:
            continue
        value, assign, name = version
        if value != committed.get("version"):
            continue  # the bump accompanied the change: sanctioned
        if current_hash != committed.get("surface"):
            committed_hash = str(committed.get("surface", ""))
            yield context.finding(
                CODE,
                assign,
                f"serialized {surface!r} surface changed "
                f"({committed_hash[:12]} -> {current_hash[:12]}) without "
                f"bumping {name}: bump the constant and regenerate "
                f"lint-contracts.json (repro-mc lint --write-contracts)",
            )
