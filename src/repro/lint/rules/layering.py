"""RL001: architectural layering.

Three load-bearing boundaries, the first two previously enforced
piecemeal (an ad-hoc AST test in ``tests/test_obs.py`` plus two ruff
TID251 tables):

* ``repro.obs`` **observes; it does not participate.**  Metrics and
  trace records must never feed back into the numbers they describe, so
  the observability package may import nothing from the rest of
  ``repro`` — not the analysis stack, not the pipeline, not the facade.
* ``repro.experiments`` speaks only to the stable :mod:`repro.api`
  facade.  Importing ``repro.analysis`` internals from a figure script
  couples every table to the analysis package layout and bypasses the
  pipeline's caching/fingerprint discipline.
* ``repro.service`` serves analyses; it does not run experiments.  The
  HTTP layer may import ``pipeline``/``obs``/``api`` (and the model/io
  layers beneath them) but nothing from ``repro.experiments`` — figure
  scripts are CLI artefacts, not serving dependencies.
* ``repro.multiproc`` is an analysis-layer subsystem: the pipeline's
  multiproc request kind calls into it, so importing
  ``repro.experiments`` (a cycle through the figure scripts) or
  ``repro.service`` (the serving layer above it) from there would
  invert the stack.

The rule resolves relative imports against the importing package, so
``from .. import analysis`` is caught just like the absolute spelling.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.engine import Finding, LintContext, register
from repro.lint.model import resolve_relative

CODE = "RL001"

#: (prefix of the importing module, banned import prefix, explanation).
_BANS: List[Tuple[str, str, str]] = [
    (
        "repro.obs",
        "repro",
        "repro.obs observes, it does not participate: it must not import "
        "from the rest of repro",
    ),
    (
        "repro.experiments",
        "repro.analysis",
        "experiments import the repro.api facade, not repro.analysis "
        "internals",
    ),
    (
        "repro.service",
        "repro.experiments",
        "repro.service serves analyses over pipeline/obs/api; figure "
        "scripts in repro.experiments are not serving dependencies",
    ),
    (
        "repro.multiproc",
        "repro.experiments",
        "repro.multiproc is analysis-layer: importing figure scripts "
        "from repro.experiments would cycle the stack",
    ),
    (
        "repro.multiproc",
        "repro.service",
        "repro.multiproc is analysis-layer: the serving layer sits "
        "above it, never beneath it",
    ),
]

#: Imports always permitted (a package importing itself).
_SELF_OK = {"repro.obs": "repro.obs"}


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _imported_modules(
    context: LintContext,
) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            module = resolve_relative(
                context.module, context.info.is_package, node
            )
            if module:
                yield node, module
            # `from repro import analysis` imports the submodule even
            # though the ImportFrom names only the package.
            for alias in node.names:
                if module:
                    yield node, f"{module}.{alias.name}"


@register(CODE, "layering: obs imports nothing from repro; experiments "
                "never import repro.analysis; service never imports "
                "repro.experiments; multiproc never imports "
                "repro.experiments or repro.service")
def check_layering(context: LintContext) -> Iterator[Finding]:
    for importer_prefix, banned_prefix, why in _BANS:
        if not _in_package(context.module, importer_prefix):
            continue
        allowed_self = _SELF_OK.get(importer_prefix)
        flagged_nodes = set()
        for node, imported in _imported_modules(context):
            if id(node) in flagged_nodes:
                continue  # one finding per import statement per ban
            if not _in_package(imported, banned_prefix):
                continue
            if allowed_self is not None and _in_package(imported, allowed_self):
                continue
            flagged_nodes.add(id(node))
            yield context.finding(
                CODE, node, f"{context.module} imports {imported}: {why}"
            )
