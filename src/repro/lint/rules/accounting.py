"""RL008: every settled result increments exactly one disposition.

``BatchStats.reconciles()`` promises ``computed + cache_hits + resumed
+ deduplicated + quarantined == total`` at the end of every run — the
invariant the crash-recovery tests and the service stats endpoint both
lean on.  The runtime check only tells you the books are off *after* a
run; it cannot point at the settle path that forgot to count, and it
never executes the error paths chaos testing exists for.

This rule proves the invariant statically, per execution path.  A
*settle event* is a store into a result buffer — a subscript
assignment into a name bound to ``[None] * n`` in the function or an
enclosing function (the ``payloads`` buffer that ``settle`` closes
over).  A *disposition increment* is an ``AugAssign`` add on one of
the unit counters (``computed``, ``cache_hits``, ``resumed``,
``quarantined``) through an attribute chain that passes a ``stats``
segment.  On every enumerated path (:func:`repro.lint.dataflow.
enumerate_paths`) through a function that settles, the two must
balance: one increment per store.  ``deduplicated`` rides along
(``+= len(indices) - 1`` fans one payload out to duplicate requests)
and ``failures`` is bookkeeping, not a disposition — neither
participates in the balance.

Three more checks close the loop across functions and layers:

* a unit-disposition increment in a function that never settles is an
  orphan (counting without a result);
* a function that merges stats (``x.stats = a + b.stats`` — the
  coordinator's ``_settle``) must merge on *every* path exactly once,
  or partial-failure accounting drops a runner's counters;
* ``BatchStats`` itself must keep ``__add__`` and ``settled()``
  covering all five dispositions, or the merged invariant silently
  weakens.

Pure fan-out loops (``for i in indices: payloads[i] = payload``) are
kept atomic during path enumeration so their zero-iteration artifact
cannot split a settle event from its counter.  A truncated enumeration
yields no findings for that function — no proof is not a finding —
and :func:`settle_path_report` exposes the per-path ledger so tests
can assert full coverage over the real pipeline.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import Path, enumerate_paths
from repro.lint.engine import Finding, LintContext, register

CODE = "RL008"

_SCOPE_PREFIXES = (
    "repro.pipeline.core",
    "repro.pipeline.runner",
    "repro.pipeline.fault_tolerance",
)

#: The five counters whose sum must equal ``total``.
DISPOSITIONS: FrozenSet[str] = frozenset(
    {"computed", "cache_hits", "resumed", "deduplicated", "quarantined"}
)

#: Counters incremented once per settled item.  ``deduplicated`` is the
#: fan-out remainder and rides along with a ``computed`` increment.
UNIT_DISPOSITIONS: FrozenSet[str] = DISPOSITIONS - {"deduplicated"}

#: ``BatchRunner.run`` — the densest settle function in the pipeline —
#: enumerates ~12.5k acyclic paths; the cap leaves headroom while still
#: bounding pathological fixture inputs.
_PATH_LIMIT = 1 << 15


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _SCOPE_PREFIXES
    )


# -- event recognisers --------------------------------------------------


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``self.stats.computed`` → ``["self", "stats", "computed"]``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _through_stats(chain: List[str]) -> bool:
    return any("stats" in part.lower() for part in chain[:-1])


def _unit_increment(stmt: ast.stmt) -> Optional[str]:
    """Disposition name when ``stmt`` is a unit-counter increment."""
    if not isinstance(stmt, ast.AugAssign) or not isinstance(
        stmt.op, ast.Add
    ):
        return None
    chain = _attr_chain(stmt.target)
    if chain is None or chain[-1] not in UNIT_DISPOSITIONS:
        return None
    return chain[-1] if _through_stats(chain) else None


def _is_none_buffer_value(value: Optional[ast.expr]) -> bool:
    """``[None] * n`` (either operand order)."""
    if not isinstance(value, ast.BinOp) or not isinstance(
        value.op, ast.Mult
    ):
        return False
    for side in (value.left, value.right):
        if (
            isinstance(side, ast.List)
            and len(side.elts) == 1
            and isinstance(side.elts[0], ast.Constant)
            and side.elts[0].value is None
        ):
            return True
    return False


def _is_store(stmt: ast.stmt, buffers: Set[str]) -> bool:
    if isinstance(stmt, ast.Assign):
        targets: List[ast.expr] = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets = [stmt.target]
    else:
        return False
    return any(
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id in buffers
        for target in targets
    )


def _is_store_loop(stmt: ast.stmt, buffers: Set[str]) -> bool:
    """A loop whose whole body fans one payload out to buffer slots."""
    if not isinstance(stmt, (ast.For, ast.AsyncFor)):
        return False
    return bool(stmt.body) and all(
        _is_store(inner, buffers) for inner in stmt.body
    )


def _is_merge(stmt: ast.stmt) -> bool:
    """``x.stats = a.stats + b.stats`` or ``x.stats += y.stats``."""
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) != 1:
            return False
        target, value = stmt.targets[0], stmt.value
        if not isinstance(value, ast.BinOp) or not isinstance(
            value.op, ast.Add
        ):
            return False
        operands = (value.left, value.right)
    elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
        target, operands = stmt.target, (stmt.value,)
    else:
        return False
    target_chain = _attr_chain(target)
    if target_chain is None or "stats" not in target_chain[-1].lower():
        return False
    for operand in operands:
        chain = _attr_chain(operand)
        if chain is not None and "stats" in chain[-1].lower():
            return True
    return False


# -- function discovery with closure-aware buffer sets ------------------


def _shallow_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of one function body, loops/withs/trys included,
    nested function and class bodies excluded."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            yield from _shallow_statements(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _shallow_statements(handler.body)


def _buffer_names(body: List[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in _shallow_statements(body):
        if isinstance(stmt, ast.Assign) and _is_none_buffer_value(
            stmt.value
        ):
            names.update(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
        elif isinstance(stmt, ast.AnnAssign) and _is_none_buffer_value(
            stmt.value
        ):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


_FnEntry = Tuple[str, ast.FunctionDef, Set[str]]


def _functions_with_buffers(tree: ast.Module) -> List[_FnEntry]:
    """(qualified name, node, visible result buffers) per function,
    where buffers include those of lexically enclosing functions —
    the closure case ``settle`` writing ``run``'s ``payloads``."""
    entries: List[_FnEntry] = []

    def visit(
        body: List[ast.stmt], prefix: str, inherited: Set[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{stmt.name}"
                visible = inherited | _buffer_names(stmt.body)
                entries.append((name, stmt, visible))  # type: ignore[arg-type]
                visit(stmt.body, f"{name}.<locals>.", visible)
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, f"{prefix}{stmt.name}.", inherited)

    visit(tree.body, "", set())
    return entries


# -- per-path ledger ----------------------------------------------------


def _path_ledger(
    path: Path, buffers: Set[str]
) -> Tuple[List[ast.stmt], List[Tuple[ast.stmt, str]], List[ast.stmt]]:
    """(store events, unit increments, merges) along one path."""
    stores: List[ast.stmt] = []
    units: List[Tuple[ast.stmt, str]] = []
    merges: List[ast.stmt] = []
    for stmt in path:
        if _is_store_loop(stmt, buffers) or _is_store(stmt, buffers):
            stores.append(stmt)
        else:
            unit = _unit_increment(stmt)
            if unit is not None:
                units.append((stmt, unit))
            elif _is_merge(stmt):
                merges.append(stmt)
    return stores, units, merges


def _enumerate(
    fn: ast.FunctionDef, buffers: Set[str]
) -> Tuple[List[Path], bool]:
    return enumerate_paths(
        fn.body,
        limit=_PATH_LIMIT,
        atomic=lambda stmt: _is_store_loop(stmt, buffers),
    )


def _function_summary(
    name: str, fn: ast.FunctionDef, buffers: Set[str]
) -> Optional[Dict[str, Any]]:
    """Path ledger for one function, or None when it has no events."""
    has_stores = any(
        _is_store(stmt, buffers) for stmt in _shallow_statements(fn.body)
    )
    has_units = any(
        _unit_increment(stmt) is not None
        for stmt in _shallow_statements(fn.body)
    )
    has_merges = any(
        _is_merge(stmt) for stmt in _shallow_statements(fn.body)
    )
    if not (has_stores or has_units or has_merges):
        return None
    paths, truncated = _enumerate(fn, buffers)
    ledgers = []
    for path in paths:
        stores, units, merges = _path_ledger(path, buffers)
        ledgers.append(
            {
                "stores": len(stores),
                "increments": [unit for _stmt, unit in units],
                "merges": len(merges),
                "_events": (stores, units, merges),
            }
        )
    return {
        "name": name,
        "node": fn,
        "settles": has_stores,
        "merging": has_merges,
        "truncated": truncated,
        "paths": ledgers,
    }


# -- the rule -----------------------------------------------------------


def _balance_findings(
    context: LintContext, summary: Dict[str, Any]
) -> Iterator[Finding]:
    fn = summary["node"]
    emitted: Set[Tuple[int, int, str]] = set()

    def once(node: ast.AST, message: str) -> Iterator[Finding]:
        key = (
            getattr(node, "lineno", fn.lineno),
            getattr(node, "col_offset", fn.col_offset),
            message,
        )
        if key not in emitted:
            emitted.add(key)
            yield context.finding(CODE, node, message)

    if summary["settles"]:
        if summary["truncated"]:
            return  # no proof is not a finding; the report says so
        for ledger in summary["paths"]:
            stores, units, _merges = ledger["_events"]
            if not stores and not units:
                continue
            if len(units) < len(stores):
                anchor = stores[-1]
                yield from once(
                    anchor,
                    "settle path stores a result payload without "
                    "incrementing a disposition counter (computed / "
                    "cache_hits / resumed / quarantined): every settled "
                    "item must be counted exactly once",
                )
            elif len(units) > len(stores):
                anchor = units[-1][0]
                names = ", ".join(unit for _stmt, unit in units)
                yield from once(
                    anchor,
                    f"settle path increments {len(units)} disposition "
                    f"counters ({names}) for {len(stores)} payload "
                    f"store(s): each settled item must land in exactly "
                    f"one disposition",
                )
    else:
        # Orphan increments: counting where nothing settles.
        for stmt in _shallow_statements(fn.body):
            unit = _unit_increment(stmt)
            if unit is not None:
                yield from once(
                    stmt,
                    f"disposition counter {unit!r} incremented in a "
                    f"function that never stores a settled payload: "
                    f"counters move only where results settle",
                )

    if summary["merging"] and not summary["truncated"]:
        for ledger in summary["paths"]:
            _stores, _units, merges = ledger["_events"]
            if len(merges) == 0:
                yield from once(
                    fn,
                    f"a path through {fn.name} skips the stats merge: "
                    f"partial-failure accounting would drop the "
                    f"runner's disposition counters",
                )
            elif len(merges) > 1:
                yield from once(
                    merges[-1],
                    "stats merged more than once on a single path: "
                    "dispositions would double-count",
                )


def _class_findings(context: LintContext) -> Iterator[Finding]:
    for node in context.info.classes.values():
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if "settled" not in methods or "reconciles" not in methods:
            continue
        add = methods.get("__add__")
        if add is not None:
            attrs = {
                sub.attr for sub in ast.walk(add)
                if isinstance(sub, ast.Attribute)
            }
            missing = sorted((DISPOSITIONS | {"total"}) - attrs)
            if missing:
                yield context.finding(
                    CODE, add,
                    f"{node.name}.__add__ does not combine "
                    f"{', '.join(missing)}: merged stats silently drop "
                    f"those dispositions",
                )
        settled_attrs = {
            sub.attr for sub in ast.walk(methods["settled"])
            if isinstance(sub, ast.Attribute)
        }
        missing = sorted(DISPOSITIONS - settled_attrs)
        if missing:
            yield context.finding(
                CODE, methods["settled"],
                f"{node.name}.settled() does not sum "
                f"{', '.join(missing)}: reconciles() can no longer "
                f"prove the dispositions cover total",
            )


@register(CODE, "exactly-once accounting: every settle path increments "
                "exactly one BatchStats disposition counter, stats "
                "merges run once per path, and BatchStats keeps all "
                "five dispositions")
def check_accounting(context: LintContext) -> Iterator[Finding]:
    if not _in_scope(context.module):
        return
    for name, fn, buffers in _functions_with_buffers(context.tree):
        summary = _function_summary(name, fn, buffers)
        if summary is not None:
            yield from _balance_findings(context, summary)
    yield from _class_findings(context)


def settle_path_report(
    tree: ast.Module, *, module: str = ""
) -> Dict[str, Any]:
    """The per-path accounting ledger RL008 checks, as data.

    Tests use this to *prove* coverage over the real pipeline: every
    function that settles shows balanced paths, every merge function
    shows exactly one merge per path, and the disposition list is the
    full five-counter set that must sum to ``total``.
    """
    functions: List[Dict[str, Any]] = []
    for name, fn, buffers in _functions_with_buffers(tree):
        summary = _function_summary(name, fn, buffers)
        if summary is None:
            continue
        functions.append(
            {
                "name": summary["name"],
                "settles": summary["settles"],
                "merging": summary["merging"],
                "truncated": summary["truncated"],
                "paths": [
                    {
                        "stores": ledger["stores"],
                        "increments": list(ledger["increments"]),
                        "merges": ledger["merges"],
                    }
                    for ledger in summary["paths"]
                ],
            }
        )
    return {
        "module": module,
        "dispositions": sorted(DISPOSITIONS),
        "unit_dispositions": sorted(UNIT_DISPOSITIONS),
        "functions": functions,
    }
