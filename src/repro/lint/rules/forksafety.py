"""RL004: fork-safety of work shipped to the process pool.

The :class:`~repro.pipeline.runner.BatchRunner` promises that ``jobs=N``
equals ``jobs=1`` byte for byte.  That only holds when every callable
submitted to its ``ProcessPoolExecutor``

* **pickles** — lambdas, nested functions and bound methods do not
  survive the trip to a worker (or fail at submit time with an error
  pointing nowhere useful); and
* **communicates only through its arguments and return value** — a
  worker mutating module-level state mutates its *own copy*; the parent
  never sees the write, so the result silently depends on which process
  ran the item.  (Worker-local state that is explicitly shipped back,
  like the kernels' perf-counter deltas, is the sanctioned pattern.)

The rule finds ``with ProcessPoolExecutor(...) as ex:`` blocks, takes
every ``ex.submit(fn, ...)`` / ``ex.map(fn, ...)`` call site, and:

* flags a lambda or nested/locally-defined function at the call site;
* resolves ``fn`` to its module-level definition (following project
  imports) and traverses its project-internal call graph transitively,
  flagging any reachable function that rebinds a ``global`` name or
  assigns to an attribute/item of a module-level binding.

Arguments that are themselves parameters (``map_items``-style generic
fan-out) cannot be resolved statically and are skipped — the semantics
there belong to the caller.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, LintContext, register
from repro.lint.model import ModuleInfo

CODE = "RL004"

#: Bound on transitive traversal (cycle-safe anyway; this caps cost).
_MAX_VISITED = 200

_EXECUTOR_TYPES = {"ProcessPoolExecutor"}
_SUBMIT_METHODS = {"submit", "map"}


def _is_executor_ctor(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    ctor = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return ctor in _EXECUTOR_TYPES


def _executor_names(tree: ast.Module) -> Set[str]:
    """Names bound to a pool executor anywhere in the module.

    Covers both binding forms the codebase uses: ``with
    ProcessPoolExecutor(...) as name`` blocks and plain assignments
    (``name = ProcessPoolExecutor(...)`` / ``name = self._new_pool()``
    where the helper's body is a constructor call) — the supervised
    retry loop in the runner manages executor lifetime manually, and
    its submit sites must stay covered by this rule.
    """
    names: Set[str] = set()
    # Helper functions/methods whose body just builds an executor
    # (``return ProcessPoolExecutor(...)``): calls to them count too.
    factory_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and _is_executor_ctor(stmt.value):
                    factory_names.add(node.name)

    def _binds_executor(value: Optional[ast.AST]) -> bool:
        if _is_executor_ctor(value):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return callee in factory_names
        return False

    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _binds_executor(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign):
            if _binds_executor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if _binds_executor(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _module_level_bindings(tree: ast.Module) -> Set[str]:
    """Names assigned at module top level (candidates for shared state)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound


def _global_writes(fn: ast.FunctionDef) -> List[Tuple[ast.AST, str]]:
    """(node, name) pairs where ``fn`` writes names it declared global."""
    declared: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return []
    writes: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                writes.append((node, target.id))
    return writes


def _shared_state_writes(
    fn: ast.FunctionDef, module_bindings: Set[str]
) -> List[Tuple[ast.AST, str]]:
    """Assignments to attributes/items of module-level bindings.

    Local rebindings shadow module state and are ignored: only
    ``SHARED.attr = ...`` / ``SHARED[...] = ...`` / ``SHARED.x += ...``
    on a name that is module-level *and not rebound locally* counts.
    """
    local: Set[str] = {arg.arg for arg in fn.args.args}
    local.update(arg.arg for arg in fn.args.kwonlyargs)
    local.update(arg.arg for arg in fn.args.posonlyargs)
    if fn.args.vararg:
        local.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        local.add(fn.args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    local.add(item.optional_vars.id)

    writes: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        targets = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if (
                target is not base  # an attribute/item write, not a rebind
                and isinstance(base, ast.Name)
                and base.id in module_bindings
                and base.id not in local
            ):
                writes.append((node, base.id))
    return writes


class _Traversal:
    """Cycle-safe transitive walk of the project-internal call graph.

    Resolution runs over the project model: the per-module index
    (:class:`~repro.lint.model.ModuleInfo`) provides top-level
    functions and import bindings, and cross-module hops go through
    ``model.get`` so any indexed module — not just the one being
    linted — anchors the traversal.
    """

    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.visited: Set[Tuple[str, str]] = set()
        self.findings: List[Finding] = []

    def _flag(self, origin: ast.AST, message: str) -> None:
        self.findings.append(self.context.finding(CODE, origin, message))

    def visit(
        self,
        fn_name: str,
        info: ModuleInfo,
        origin: ast.AST,
        chain: str,
    ) -> None:
        key = (info.module, fn_name)
        if key in self.visited or len(self.visited) >= _MAX_VISITED:
            return
        self.visited.add(key)
        fn = info.functions.get(fn_name)
        if fn is None:
            target = info.import_bindings.get(fn_name)
            if target is not None and target[0].startswith("repro"):
                imported = self.context.model.get(target[0])
                if imported is not None:
                    self.visit(target[1], imported, origin, chain)
            return

        for node, name in _global_writes(fn):
            self._flag(
                origin,
                f"{chain} reaches {info.module}.{fn_name}, which "
                f"writes module-level global {name!r} (line "
                f"{getattr(node, 'lineno', '?')}); workers never share "
                f"that write back",
            )
        bindings = _module_level_bindings(info.tree)
        for node, name in _shared_state_writes(fn, bindings):
            self._flag(
                origin,
                f"{chain} reaches {info.module}.{fn_name}, which "
                f"mutates module-level state {name!r} (line "
                f"{getattr(node, 'lineno', '?')}); worker-local mutations "
                f"are lost unless explicitly shipped back",
            )

        # Recurse into project-internal calls by simple name.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                self.visit(
                    node.func.id, info, origin,
                    f"{chain} -> {node.func.id}",
                )


@register(CODE, "fork-safety: callables submitted to the process pool "
                "must pickle and must not write shared module state")
def check_fork_safety(context: LintContext) -> Iterator[Finding]:
    executors = _executor_names(context.tree)
    if not executors:
        return
    functions = context.info.functions
    nested: Set[str] = set()
    for outer in ast.walk(context.tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if (
                    inner is not outer
                    and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nested.add(inner.name)

    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in executors
        ):
            continue
        if not node.args:
            continue
        submitted = node.args[0]
        if isinstance(submitted, ast.Lambda):
            yield context.finding(
                CODE, submitted,
                "lambda submitted to a process pool: lambdas do not pickle",
            )
            continue
        if not isinstance(submitted, ast.Name):
            yield context.finding(
                CODE, submitted,
                "only a module-level function can be submitted to a process "
                "pool (bound methods and expressions may not pickle)",
            )
            continue
        name = submitted.id
        if name in nested and name not in functions:
            yield context.finding(
                CODE, submitted,
                f"nested function {name!r} submitted to a process pool: "
                f"closures do not pickle",
            )
            continue
        if (
            name not in functions
            and name not in context.info.import_bindings
        ):
            continue  # a parameter or local alias: caller owns semantics
        traversal = _Traversal(context)
        traversal.visit(name, context.info, submitted, name)
        yield from traversal.findings
