"""RL003: no entropy in fingerprint-, cache- or counter-affecting code.

The pipeline's contract is that ``jobs=1`` and ``jobs=N`` produce
byte-identical reports, FINGERPRINT_VERSION=2 cache keys are stable
across runs, and every ``counters`` entry in a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot is a pure function
of the work performed.  One ``time.time()`` in a payload or one
unseeded RNG in a generator breaks all three silently — the sweep still
runs, the cache just stops hitting and the determinism tests chase a
ghost.

Inside the deterministic scope (model, analysis, pipeline, generator,
sim, experiments, io, api and the obs counters module) the rule flags:

* wall-clock and entropy reads whose *value* could reach an output:
  ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/
  ``today``, ``os.urandom``, ``uuid.uuid1``/``uuid4`` and anything in
  ``secrets``.  ``time.perf_counter``/``monotonic`` stay legal: timings
  are real observability data and live in the snapshot's non-compared
  ``timing`` section.
* module-level RNG: every ``random.*`` call (global, order-dependent
  state) and every ``numpy.random.*`` legacy call.  The blessed route
  is an explicitly seeded generator — ``np.random.default_rng(seed)``
  or ``random.Random(seed)`` — threaded through the call tree.
* unseeded construction: ``np.random.default_rng()`` / ``SeedSequence()``
  / ``random.Random()`` with no arguments draw OS entropy.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.engine import Finding, LintContext, register

CODE = "RL003"

#: Packages/modules whose outputs feed fingerprints, cache keys,
#: deterministic counters, or published experiment numbers.
_SCOPE_PREFIXES = (
    "repro.model",
    "repro.analysis",
    "repro.pipeline",
    "repro.generator",
    "repro.sim",
    "repro.experiments",
    "repro.io",
    "repro.api",
    "repro.obs.metrics",
)

#: Fully-qualified callables that read the wall clock or OS entropy.
_BANNED_CALLS: Dict[str, str] = {
    "time.time": "wall-clock value in deterministic code",
    "time.time_ns": "wall-clock value in deterministic code",
    "datetime.datetime.now": "wall-clock value in deterministic code",
    "datetime.datetime.utcnow": "wall-clock value in deterministic code",
    "datetime.datetime.today": "wall-clock value in deterministic code",
    "datetime.date.today": "wall-clock value in deterministic code",
    "os.urandom": "OS entropy in deterministic code",
    "uuid.uuid1": "host/time-derived identifier in deterministic code",
    "uuid.uuid4": "OS entropy in deterministic code",
}

#: Constructors that are fine *with* a seed but draw OS entropy bare.
_SEED_REQUIRED = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
}

#: numpy.random attributes that are generator plumbing, not the legacy
#: global-state API.
_NUMPY_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _SCOPE_PREFIXES
    )


@register(CODE, "determinism: wall clock, OS entropy or unseeded RNG in "
                "fingerprint/cache/counter-affecting code")
def check_determinism(context: LintContext) -> Iterator[Finding]:
    if not _in_scope(context.module):
        return
    # The per-module index already resolved every import (including
    # relative ones) to a dotted origin; dotted_path rides on it.
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        path = context.info.dotted_path(node.func)
        if path is None:
            continue
        reason = _BANNED_CALLS.get(path)
        if reason is not None:
            yield context.finding(CODE, node, f"call to {path}: {reason}")
            continue
        if path.startswith("secrets."):
            yield context.finding(
                CODE, node, f"call to {path}: OS entropy in deterministic code"
            )
            continue
        if path in _SEED_REQUIRED and not node.args and not node.keywords:
            yield context.finding(
                CODE,
                node,
                f"unseeded {path}(): pass an explicit seed so results are "
                f"reproducible",
            )
            continue
        if path.startswith("numpy.random."):
            tail = path[len("numpy.random."):]
            if tail not in _NUMPY_RANDOM_OK:
                yield context.finding(
                    CODE,
                    node,
                    f"legacy global-state RNG numpy.random.{tail}: use a "
                    f"seeded np.random.default_rng(seed) generator",
                )
            continue
        if path.startswith("random.") and path != "random.Random":
            yield context.finding(
                CODE,
                node,
                f"module-level RNG {path}: global, order-dependent state; "
                f"use a seeded random.Random(seed) or numpy generator",
            )
