"""RL002: no float equality in the analysis package.

Theorem 2 / Corollary 5 verdicts are comparisons between demand bounds;
the whole point of the kernels' bit-exactness contract (compiled ==
scalar oracle) is that those comparisons are *decisions*, not
approximations.  An ``==``/``!=``/``is`` against a float-valued
expression is how drift sneaks in: it may hold on one engine, one
platform or one summation order and fail on another.

Correct alternatives, in order of preference:

* rewrite the comparison so exactness is structural — e.g. a sum of
  non-negative terms ``x`` satisfies ``x == 0.0`` iff ``x <= 0.0``;
* use ``fractions.Fraction`` for the comparison;
* use the documented tolerance scheme (an explicit ``rtol``-style
  slack, as in :mod:`repro.analysis.speedup`).

Deliberate exact comparisons (the kernels' breakpoint dedup mirrors the
scalar oracle's set-literal semantics, where exact equality *is* the
spec) carry a ``# repro-lint: ignore[RL002]`` suppression with a
justifying comment.

Detection is a conservative syntactic heuristic — an operand is
float-valued when it is a float literal, a ``float(...)``/``math.*``
call, a true division, or an arithmetic expression containing one of
those.  Names whose type the AST cannot see are not guessed at; the
rule prefers silence to noise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, register

CODE = "RL002"

#: The rule only bites inside the exact-arithmetic package.
_SCOPE_PREFIX = "repro.analysis"

#: ``math`` attributes that return int/bool, not float.
_MATH_NON_FLOAT = {"floor", "ceil", "gcd", "lcm", "isqrt", "comb", "perm",
                   "factorial", "isfinite", "isinf", "isnan", "isclose"}


def _is_float_valued(node: ast.AST) -> bool:
    """Syntactic evidence that ``node`` evaluates to a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_valued(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division is float-valued for numbers
        return _is_float_valued(node.left) or _is_float_valued(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
            and func.attr not in _MATH_NON_FLOAT
        ):
            return True
    return False


@register(CODE, "float-equality: analysis code compares floats with "
                "==/!=/is instead of exact or toleranced arithmetic")
def check_float_equality(context: LintContext) -> Iterator[Finding]:
    if not (
        context.module == _SCOPE_PREFIX
        or context.module.startswith(_SCOPE_PREFIX + ".")
    ):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.Is, ast.IsNot)):
                continue
            left, right = operands[i], operands[i + 1]
            if not (_is_float_valued(left) or _is_float_valued(right)):
                continue
            spelled = {
                ast.Eq: "==", ast.NotEq: "!=", ast.Is: "is", ast.IsNot: "is not",
            }[type(op)]
            yield context.finding(
                CODE,
                node,
                f"float-valued comparison with '{spelled}': use Fraction, "
                f"a structural rewrite, or the documented tolerance scheme",
            )
