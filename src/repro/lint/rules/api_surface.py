"""RL005: the public facade stays documented, typed, and honest.

``repro.api`` is the one import downstream code is told to use, so its
surface is held to a stricter standard than internal modules:

* every function in ``repro.api`` — defined there or re-exported
  through ``__all__`` — carries a docstring and complete type
  annotations (every parameter and the return type); re-exported
  classes carry a docstring.  This is what makes the mypy strict gate
  meaningful at the boundary: an unannotated export laundered through
  the facade would type-check as ``Any`` in every caller.
* a module-level ``__getattr__`` (the deprecation-shim pattern — old
  names resolving lazily with a warning) must actually call
  ``warnings.warn(..., DeprecationWarning)``.  A shim that silently
  forwards keeps dead spellings alive forever.

Re-export chains are followed through the project model's resolver
(:meth:`~repro.lint.model.ProjectModel.resolve_name`), so ``api ->
pipeline.cache -> model.fingerprint`` still ends at the real
definition.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.engine import Finding, LintContext, register
from repro.lint.model import ModuleInfo

CODE = "RL005"

_API_MODULE = "repro.api"


def _exported_names(tree: ast.Module) -> List[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        return [
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
    return []


def _top_level_defs(
    tree: ast.Module,
) -> Dict[str, ast.AST]:
    defs: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs[node.name] = node
    return defs


def _missing_annotations(fn: ast.FunctionDef) -> List[str]:
    missing: List[str] = []
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is None and arg.arg not in ("self", "cls"):
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if fn.returns is None:
        missing.append("return")
    return missing


def _check_function(
    context: LintContext,
    owner: ModuleInfo,
    fn: ast.FunctionDef,
    exported_as: str,
    anchor: ast.AST,
) -> Iterator[Finding]:
    """Findings anchor at ``anchor`` (the def, or the api.py import site
    for re-exports) so path/line and suppressions stay in one file."""
    where = (
        "" if owner.module == _API_MODULE
        else f" (defined in {owner.module})"
    )
    if ast.get_docstring(fn) is None:
        yield context.finding(
            CODE, anchor,
            f"api export {exported_as!r}{where} has no docstring",
        )
    missing = _missing_annotations(fn)
    if missing:
        yield context.finding(
            CODE, anchor,
            f"api export {exported_as!r}{where} is missing type "
            f"annotations for: {', '.join(missing)}",
        )


@register(CODE, "api-surface: every repro.api export is annotated and "
                "documented; deprecation shims emit DeprecationWarning")
def check_api_surface(context: LintContext) -> Iterator[Finding]:
    # -- deprecation shims, anywhere in the tree ------------------------
    if context.module.startswith("repro"):
        for node in context.tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "__getattr__"
                and not _emits_deprecation_warning(node)
            ):
                yield context.finding(
                    CODE, node,
                    "module __getattr__ shim does not call "
                    "warnings.warn(..., DeprecationWarning): deprecated "
                    "names must warn",
                )

    if context.module != _API_MODULE:
        return

    defs = _top_level_defs(context.tree)
    checked: set[str] = set()

    # Everything defined in api.py itself is public surface.
    for name, node in defs.items():
        if name.startswith("_"):
            continue
        checked.add(name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _check_function(
                context, context.info, node, name, node
            )
        elif isinstance(node, ast.ClassDef) and ast.get_docstring(node) is None:
            yield context.finding(
                CODE, node, f"api export {name!r} has no docstring"
            )

    # Re-exports listed in __all__ resolve back to their definitions;
    # findings anchor at the api.py import that brought the name in.
    import_sites = _import_sites(context.tree)
    for name in _exported_names(context.tree):
        if name in checked:
            continue
        resolved = context.model.resolve_name(context.module, name)
        if resolved is None:
            continue  # a module object or unresolvable chain: skip
        owner, node = resolved
        anchor = import_sites.get(name, context.tree.body[0])
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _check_function(context, owner, node, name, anchor)
        elif isinstance(node, ast.ClassDef) and ast.get_docstring(node) is None:
            yield context.finding(
                CODE, anchor,
                f"api export {name!r} (defined in {owner.module}) has no "
                f"docstring",
            )


def _import_sites(tree: ast.Module) -> Dict[str, ast.AST]:
    """Exported name → the import statement that binds it."""
    sites: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                sites[alias.asname or alias.name] = node
    return sites


def _emits_deprecation_warning(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_warn = (
            isinstance(func, ast.Attribute) and func.attr == "warn"
        ) or (isinstance(func, ast.Name) and func.id == "warn")
        if not is_warn:
            continue
        mentions = [
            arg for arg in [*node.args, *[k.value for k in node.keywords]]
            if isinstance(arg, ast.Name) and "Deprecation" in arg.id
            or isinstance(arg, ast.Attribute) and "Deprecation" in arg.attr
        ]
        if mentions:
            return True
    return False
