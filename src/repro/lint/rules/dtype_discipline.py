"""RL007: dtype and reduction discipline in the numpy kernels.

The compiled kernels promise bit-exactness against the scalar oracle
(``results_match`` in every benchmark run).  That promise rests on
three numpy disciplines that nothing at runtime enforces:

* **everything is float64.**  A single float32 value — an explicit
  ``dtype=np.float32``, an ``astype``, a cast — silently promotes
  through arithmetic and shifts the low bits of every sum it touches.
* **reductions follow the documented row-order contract.**  The
  kernels pin reductions to ``np.add.reduce`` over a fixed axis order
  (see the contract notes in :mod:`repro.analysis.kernels`); a stray
  ``np.sum`` / ``.sum()`` on a float array may use pairwise summation
  with a different grouping and break bit-exactness with the oracle.
* **array constructors are explicit.**  ``np.array(values)`` infers a
  dtype from whatever ``values`` happens to hold (ints one day,
  floats the next); construction from a set or dict additionally
  inherits process-dependent ordering.  ``np.zeros``/``np.empty``/
  ``np.linspace`` are exempt — their float64 default is part of the
  numpy API, not an inference.

Scope: :mod:`repro.analysis.kernels` and
:mod:`repro.analysis.population` only — the two modules under the
bit-exactness contract.  Integer reductions (``counts.sum()`` on a
proven int array) and unproven receivers stay silent: the rule
prefers silence to noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.dataflow import (
    ARRAY,
    DICT,
    DICT_VIEW,
    FLOAT32,
    FLOAT64,
    SCALAR,
    SET,
    Dataflow,
    dtype_of_expr,
)
from repro.lint.engine import Finding, LintContext, register
from repro.lint.model import iter_functions

CODE = "RL007"

_SCOPE_PREFIXES = ("repro.analysis.kernels", "repro.analysis.population")

#: Constructors that infer their dtype from data: explicit dtype required.
_INFERRING_CTORS = {"array", "asarray", "ascontiguousarray", "full",
                    "fromiter"}

#: Constructors whose float64 default is fixed API, not inference.
_FIXED_DEFAULT_CTORS = {"zeros", "ones", "empty", "linspace", "arange",
                        "zeros_like", "ones_like", "empty_like"}

_FLOAT32_CASTS = {"float32", "single", "float16", "half"}


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _SCOPE_PREFIXES
    )


def _walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield child
        yield from _walk_shallow(child)


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _unordered_feed(arg: ast.expr, flow: Dataflow) -> Optional[str]:
    """'set'/'dict' when ``arg`` iterates unordered data, else None."""

    def _classify(expr: ast.expr) -> Optional[str]:
        value = flow.value_of(expr)
        if value.kind == SET or isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if value.kind in (DICT, DICT_VIEW) or (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("items", "keys", "values")
        ):
            return "dict"
        return None

    direct = _classify(arg)
    if direct is not None:
        return direct
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
        for gen in arg.generators:
            inner = _classify(gen.iter)
            if inner is not None:
                return inner
    return None


def _check_body(
    context: LintContext, root: ast.AST, flow: Dataflow
) -> Iterator[Finding]:
    aliases = context.info.aliases
    for node in _walk_shallow(root):
        if isinstance(node, ast.BinOp):
            left = flow.value_of(node.left)
            right = flow.value_of(node.right)
            dtypes = {
                v.dtype for v in (left, right) if v.kind in (ARRAY, SCALAR)
            }
            if {FLOAT32, FLOAT64} <= dtypes:
                yield context.finding(
                    CODE, node,
                    "mixed float32/float64 arithmetic promotes implicitly "
                    "and shifts low bits: keep kernel data float64 end "
                    "to end",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # .astype(float32) and float-array .sum() method calls.
        if isinstance(func, ast.Attribute):
            if func.attr == "astype":
                dtype_node = (
                    node.args[0] if node.args else _kwarg(node, "dtype")
                )
                if dtype_of_expr(dtype_node, aliases) == FLOAT32:
                    yield context.finding(
                        CODE, node,
                        "astype to float32 in kernel code: the "
                        "bit-exactness contract is float64 end to end",
                    )
                continue
            if func.attr == "sum":
                receiver = flow.value_of(func.value)
                if receiver.is_float_array:
                    yield context.finding(
                        CODE, node,
                        ".sum() on a float array: reductions follow the "
                        "documented row-order contract — use "
                        "np.add.reduce",
                    )
                if receiver.kind == ARRAY:
                    continue
                # An unproven receiver may still be the numpy module
                # itself (np.sum(...)): fall through to the dotted check.

        dotted = _dotted(func, aliases)
        if dotted is None or not dotted.startswith("numpy."):
            continue
        tail = dotted[len("numpy."):]

        if tail in _FLOAT32_CASTS:
            yield context.finding(
                CODE, node,
                f"np.{tail} cast in kernel code: the bit-exactness "
                f"contract is float64 end to end",
            )
            continue
        if tail == "sum":
            arg = node.args[0] if node.args else None
            if arg is not None and flow.value_of(arg).is_float_array:
                yield context.finding(
                    CODE, node,
                    "np.sum on a float array: reductions follow the "
                    "documented row-order contract — use np.add.reduce",
                )
            continue
        if tail in _FIXED_DEFAULT_CTORS:
            if dtype_of_expr(_kwarg(node, "dtype"), aliases) == FLOAT32:
                yield context.finding(
                    CODE, node,
                    f"np.{tail}(dtype=float32) in kernel code: the "
                    f"bit-exactness contract is float64 end to end",
                )
            continue
        if tail not in _INFERRING_CTORS:
            continue

        dtype_node = _kwarg(node, "dtype")
        if dtype_node is None and tail == "fromiter" and len(node.args) >= 2:
            dtype_node = node.args[1]
        if dtype_node is None:
            yield context.finding(
                CODE, node,
                f"np.{tail} without an explicit dtype infers one from its "
                f"data: pass dtype=float (or the intended integer dtype) "
                f"so kernel arrays cannot drift",
            )
        elif dtype_of_expr(dtype_node, aliases) == FLOAT32:
            yield context.finding(
                CODE, node,
                f"np.{tail}(dtype=float32) in kernel code: the "
                f"bit-exactness contract is float64 end to end",
            )
        if node.args:
            feed = _unordered_feed(node.args[0], flow)
            if feed is not None:
                yield context.finding(
                    CODE, node,
                    f"np.{tail} over a {feed}: unordered iteration feeding "
                    f"array construction makes element order "
                    f"process-dependent; sort first",
                )


@register(CODE, "kernel dtype discipline: no float32, no np.sum on float "
                "arrays (row-order contract wants np.add.reduce), no "
                "unordered-set/dict feeds, explicit dtypes on inferring "
                "constructors")
def check_dtype_discipline(context: LintContext) -> Iterator[Finding]:
    if not _in_scope(context.module):
        return
    aliases = context.info.aliases
    module_flow = Dataflow.of_module(context.tree, aliases)
    yield from _check_body(context, context.tree, module_flow)
    for _name, fn in iter_functions(context.tree):
        flow = Dataflow.of_function(fn, aliases)
        yield from _check_body(context, fn, flow)
