"""Serialized-surface contracts: what RL006 hashes and compares.

Four serialization lineages carry a version constant whose bump is the
*only* sanctioned way to change what goes over the wire or onto disk:

====================  ==================================================
``fingerprint``       ``FINGERPRINT_VERSION`` — the canonical task-set
                      encoding in :mod:`repro.model.fingerprint`
                      (digest functions plus the domain-separation
                      header constant).
``checkpoint``        ``CHECKPOINT_VERSION`` — the checkpoint record
                      shape: the ``ReportPayload`` / ``FailurePayload``
                      / ``CheckpointEntry`` TypedDict fields.
``cache``             ``CACHE_FORMAT_VERSION`` — the result-cache entry:
                      ``request_fingerprint`` plus the report payload.
``wire``              ``WIRE_VERSION`` — the HTTP service schema:
                      response TypedDicts, ``OPTION_FIELDS``, and the
                      report payload they embed.
====================  ==================================================

Each surface reduces to a canonical text descriptor (TypedDict field
lists, docstring-stripped ``ast.dump`` of functions, value dumps of
constants) whose SHA-256 is committed to ``lint-contracts.json``
alongside the version number seen at commit time.  RL006 then fires
when the hash moves while the version stands still — the one
combination that silently invalidates persisted data.

Items that do not resolve in the analysed tree contribute an
``absent`` marker rather than failing: fixture trees exercise single
surfaces, and a refactor that *moves* a definition shows up as a
surface change (which is exactly right — serialized bytes follow the
definition, not the file).
"""

from __future__ import annotations

import ast
import copy
import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.model import ProjectModel

#: Schema stamp of the committed contract file.
CONTRACTS_VERSION = 1

#: Item kinds a surface may reference.
_FUNCTION = "function"
_TYPEDDICT = "typeddict"
_CONSTANT = "constant"

#: surface name → (version anchor, items).  The version anchor is
#: ``(module, constant name)``; items are ``(module, kind, name)``.
SURFACES: Dict[str, Dict[str, Any]] = {
    "fingerprint": {
        "version": ("repro.model.fingerprint", "FINGERPRINT_VERSION"),
        "items": [
            ("repro.model.fingerprint", _FUNCTION, "canonical_number"),
            ("repro.model.fingerprint", _FUNCTION,
             "canonical_taskset_payload"),
            ("repro.model.fingerprint", _FUNCTION, "digest_payload"),
            ("repro.model.fingerprint", _FUNCTION, "digest_task_rows"),
            ("repro.model.fingerprint", _FUNCTION, "taskset_fingerprint"),
            ("repro.model.fingerprint", _CONSTANT, "_DIGEST_HEADER"),
        ],
    },
    "checkpoint": {
        "version": ("repro.pipeline.runner", "CHECKPOINT_VERSION"),
        "items": [
            ("repro.pipeline.payload", _TYPEDDICT, "FailurePayload"),
            ("repro.pipeline.payload", _TYPEDDICT, "ReportPayload"),
            ("repro.pipeline.payload", _TYPEDDICT, "CheckpointEntry"),
        ],
    },
    "cache": {
        "version": ("repro.pipeline.cache", "CACHE_FORMAT_VERSION"),
        "items": [
            ("repro.pipeline.cache", _FUNCTION, "request_fingerprint"),
            ("repro.pipeline.payload", _TYPEDDICT, "ReportPayload"),
        ],
    },
    "wire": {
        "version": ("repro.service.schema", "WIRE_VERSION"),
        "items": [
            ("repro.service.schema", _TYPEDDICT, "ErrorPayload"),
            ("repro.service.schema", _TYPEDDICT, "JobPayload"),
            ("repro.service.schema", _CONSTANT, "OPTION_FIELDS"),
            ("repro.pipeline.payload", _TYPEDDICT, "ReportPayload"),
        ],
    },
}


def _strip_docstring(fn: ast.FunctionDef) -> ast.FunctionDef:
    clone = copy.deepcopy(fn)
    if (
        clone.body
        and isinstance(clone.body[0], ast.Expr)
        and isinstance(clone.body[0].value, ast.Constant)
        and isinstance(clone.body[0].value.value, str)
    ):
        clone.body = clone.body[1:] or [ast.Pass()]
    return clone


def _typeddict_descriptor(node: ast.ClassDef) -> str:
    fields: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append(
                f"{stmt.target.id}:{ast.unparse(stmt.annotation)}"
            )
    return f"typeddict {node.name}({'; '.join(sorted(fields))})"


def _item_descriptor(
    model: ProjectModel, module: str, kind: str, name: str
) -> str:
    info = model.get(module)
    if info is None:
        return f"{module}:{kind}:{name}=absent"
    if kind == _TYPEDDICT:
        node = info.classes.get(name)
        if node is None:
            return f"{module}:{kind}:{name}=absent"
        return f"{module}:{kind}:{name}={_typeddict_descriptor(node)}"
    if kind == _FUNCTION:
        fn = info.functions.get(name)
        if fn is None:
            return f"{module}:{kind}:{name}=absent"
        return f"{module}:{kind}:{name}={ast.dump(_strip_docstring(fn))}"
    assign = info.constants.get(name)
    if assign is None:
        return f"{module}:{kind}:{name}=absent"
    return f"{module}:{kind}:{name}={ast.dump(assign.value)}"


def surface_hash(model: ProjectModel, surface: str) -> Optional[str]:
    """SHA-256 over the surface's canonical descriptors.

    ``None`` when *every* item is unresolvable — the surface simply
    does not exist in the analysed tree (fixture runs).
    """
    spec = SURFACES[surface]
    descriptors = [
        _item_descriptor(model, module, kind, name)
        for module, kind, name in spec["items"]
    ]
    if all(d.endswith("=absent") for d in descriptors):
        return None
    acc = hashlib.sha256()
    for descriptor in sorted(descriptors):
        acc.update(descriptor.encode("utf-8"))
        acc.update(b"\n")
    return acc.hexdigest()


def surface_version(
    model: ProjectModel, surface: str
) -> Optional[Tuple[int, ast.Assign, str]]:
    """(version value, anchoring assignment, constant name), if present."""
    module, constant = SURFACES[surface]["version"]
    info = model.get(module)
    if info is None:
        return None
    assign = info.constants.get(constant)
    if (
        assign is None
        or not isinstance(assign.value, ast.Constant)
        or not isinstance(assign.value.value, int)
        or isinstance(assign.value.value, bool)
    ):
        return None
    return assign.value.value, assign, constant


def compute_contracts(model: ProjectModel) -> Dict[str, Any]:
    """The contract document for the current tree (``--write-contracts``)."""
    surfaces: Dict[str, Dict[str, Any]] = {}
    for name in sorted(SURFACES):
        digest = surface_hash(model, name)
        version = surface_version(model, name)
        if digest is None or version is None:
            continue
        surfaces[name] = {"version": version[0], "surface": digest}
    return {
        "lint_contracts_version": CONTRACTS_VERSION,
        "surfaces": surfaces,
    }
