"""Incremental lint cache: content-hash keyed, cone-invalidated.

The cache file is one JSON document::

    {
      "lint_cache_version": 1,
      "engine_key": "<sha256>",
      "files": {
        "<path>": {
          "digest": "<sha256 of file bytes>",
          "module": "repro.pipeline.runner",
          "linted": true,
          "imports": ["repro.pipeline.payload", ...],
          "findings": [{"rule": ..., "path": ..., ...}, ...]
        },
        ...
      }
    }

The effective key of one file's cached verdict is therefore the triple
the design calls for: the *file digest* (its own bytes), the *rule
set* and *contract digest* (folded into ``engine_key`` together with
the engine's cache-format salt), and the *model digest* (every file in
its transitive import closure is itself digest-checked, and a mismatch
anywhere in the cone re-analyzes the importer).  Dependency files that
were pulled in from outside the linted paths (RL004 traversal, RL006
surfaces) are recorded with ``"linted": false`` so warm runs watch
them too.

Hashing fans out over a ``ProcessPoolExecutor`` when ``jobs`` > 1 —
the worker is a module-level function that communicates only through
arguments and return values, exactly as RL004 demands of the code this
package lints.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Schema stamp for the cache file; unknown versions are discarded.
CACHE_SCHEMA_VERSION = 1

#: Bump when rule semantics change in a way that must invalidate every
#: cached verdict even though file bytes did not move.
ENGINE_CACHE_SALT = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

#: Default committed contract file consumed by RL006.
DEFAULT_CONTRACTS_NAME = "lint-contracts.json"

#: Schema stamp for the contract file.
CONTRACTS_VERSION = 1

#: Only files at least this many bytes in total fan hashing out to a
#: pool; below it the fork overhead dwarfs the hashing.
_PARALLEL_DIGEST_MIN_FILES = 32


def path_digest(path_str: str) -> Optional[str]:
    """Hex SHA-256 of one file's bytes, or ``None`` if unreadable."""
    try:
        return hashlib.sha256(Path(path_str).read_bytes()).hexdigest()
    except OSError:
        return None


def _digest_worker(path_str: str) -> Tuple[str, Optional[str]]:
    """Pool worker: digest one file (module-level, argument-pure)."""
    return path_str, path_digest(path_str)


def digest_files(
    files: Sequence[Path], *, jobs: int = 0
) -> Dict[str, Optional[str]]:
    """Content digests for ``files``, optionally over a process pool."""
    keys = [str(path) for path in files]
    if jobs > 1 and len(keys) >= _PARALLEL_DIGEST_MIN_FILES:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return dict(pool.map(_digest_worker, keys))
    return {key: path_digest(key) for key in keys}


def engine_key(
    rule_codes: Sequence[str], contracts_digest: Optional[str]
) -> str:
    """Cache key leg covering everything that is not file content."""
    acc = hashlib.sha256()
    acc.update(f"cache-schema:{CACHE_SCHEMA_VERSION}\n".encode("ascii"))
    acc.update(f"engine-salt:{ENGINE_CACHE_SALT}\n".encode("ascii"))
    acc.update(("rules:" + ",".join(sorted(rule_codes)) + "\n").encode())
    acc.update(f"contracts:{contracts_digest or 'absent'}\n".encode())
    return acc.hexdigest()


def load_cache(path: Optional[Path]) -> Optional[Dict[str, Any]]:
    """Read cache state; any unreadable/foreign content is a cold start."""
    if path is None or not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("lint_cache_version") != CACHE_SCHEMA_VERSION
    ):
        return None
    return payload


def write_cache(
    path: Path,
    *,
    engine_key: str,
    model: Any,
    findings_by_path: Dict[str, List[Any]],
) -> None:
    """Persist per-file verdicts for every module the model loaded."""
    files: Dict[str, Dict[str, Any]] = {}
    for info in model.modules():
        path_str = str(info.path)
        linted = model.is_linted(info.module)
        entry: Dict[str, Any] = {
            "digest": info.digest,
            "module": info.module,
            "linted": linted,
            "imports": sorted(info.imports),
        }
        if linted:
            entry["findings"] = [
                f.to_dict() for f in findings_by_path.get(path_str, [])
            ]
        files[path_str] = entry
    payload = {
        "lint_cache_version": CACHE_SCHEMA_VERSION,
        "engine_key": engine_key,
        "files": files,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_contracts(
    path: Optional[Path],
) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """(contract data, digest of the file) — (None, None) when absent.

    The digest feeds :func:`engine_key`, so editing the committed
    contract file invalidates every cached verdict — RL006 must get a
    fresh look at the whole tree.
    """
    if path is None or not path.is_file():
        return None, None
    try:
        data = path.read_bytes()
        payload = json.loads(data.decode("utf-8"))
    except (OSError, ValueError):
        return None, None
    if (
        not isinstance(payload, dict)
        or payload.get("lint_contracts_version") != CONTRACTS_VERSION
    ):
        return None, None
    return payload, hashlib.sha256(data).hexdigest()
