"""Committed baseline of grandfathered lint findings.

A baseline lets a new rule land with the tree not yet clean: existing
findings are recorded (``repro-mc lint --write-baseline``) and stop
failing the build, while anything *new* still does.  Entries match on
:attr:`~repro.lint.engine.Finding.baseline_key` (path + rule +
message), deliberately ignoring line numbers so edits elsewhere in a
file do not resurrect a grandfathered finding.

The file is plain sorted JSON so diffs review like code: shrinking the
baseline is progress, growing it is a decision someone signed off on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.lint.engine import Finding

PathLike = Union[str, Path]

#: Schema stamp; unknown versions are rejected rather than guessed at.
BASELINE_VERSION = 1

#: Default committed location, relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class Baseline:
    """Set of grandfathered findings keyed by their baseline identity."""

    def __init__(self, entries: Sequence[Dict[str, object]] = ()) -> None:
        self._entries: Dict[str, Dict[str, object]] = {
            str(entry["key"]): dict(entry) for entry in entries
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.baseline_key in self._entries

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, grandfathered)."""
        fresh = [f for f in findings if f not in self]
        old = [f for f in findings if f in self]
        return fresh, old

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            [
                {"key": f.baseline_key, "rule": f.rule, "path": f.path,
                 "message": f.message}
                for f in findings
            ]
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "baseline_version": BASELINE_VERSION,
            "findings": [
                self._entries[key] for key in sorted(self._entries)
            ],
        }


def load_baseline(path: PathLike) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("baseline_version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline_version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    return Baseline(payload.get("findings", []))


def write_baseline(path: PathLike, findings: Sequence[Finding]) -> Baseline:
    """Write ``findings`` as the new baseline and return it."""
    baseline = Baseline.from_findings(findings)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(baseline.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return baseline
