"""Whole-program project model for repro-lint.

PR-5's engine handed every rule a single parsed file plus a lazy
module index; cross-module reasoning (RL004's call-graph traversal,
RL005's re-export chains) was re-derived ad hoc inside each rule.  This
module centralises that machinery so the v2 semantic rules (RL006
contract drift, RL008 exactly-once accounting) and the incremental
cache share one picture of the project:

* :class:`ModuleInfo` — one parsed module with its content digest,
  alias table (local name → dotted origin), top-level definitions and
  resolved project-internal imports (relative imports normalised);
* :class:`ProjectModel` — module-name → :class:`ModuleInfo` with
  on-demand loading from source roots, the forward/reverse import
  graph, transitive closures, qualified-name resolution through
  re-export chains, and a model digest over every loaded file;
* :class:`CallGraph` — cycle-safe transitive walk over project-internal
  calls with alias tracking, generalising RL004's ``_Traversal``.

The model imports nothing from the analysed packages (stdlib ``ast``
and ``hashlib`` only), preserving the engine's founding rule that
linting can never be distorted by the code under analysis.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Package prefixes considered "project-internal" for the import graph.
PROJECT_PREFIXES: Tuple[str, ...] = ("repro", "tests")

#: Bound on re-export chain resolution (matches RL005's historic cap).
MAX_RESOLVE_HOPS = 6


def module_name(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` layout aware)."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in PROJECT_PREFIXES:
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    return ".".join(parts) if parts else path.stem


def source_root(path: Path) -> Optional[Path]:
    """The directory that dotted imports resolve against, if any."""
    resolved = path.resolve()
    for parent in resolved.parents:
        if parent.name == "repro":
            return parent.parent
    return None


def file_digest(path: Path) -> Optional[str]:
    """Hex SHA-256 of the file's bytes, or ``None`` if unreadable."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


def _is_project(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in PROJECT_PREFIXES
    )


def resolve_relative(
    module: str, is_package: bool, node: ast.ImportFrom
) -> str:
    """Absolute module path of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # level 1 inside a module drops the module name itself; each extra
    # level drops one more package.  __init__ modules already name the
    # package, which module_name normalised for us.
    drop = node.level - 1 if is_package else node.level
    if drop >= len(parts):
        return node.module or ""
    base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base)


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived lookups rules need."""

    module: str
    path: Path
    source: str
    tree: ast.Module
    digest: str
    #: Project-internal modules this file imports (direct edges only;
    #: ``from repro.x import y`` contributes both ``repro.x`` and the
    #: candidate submodule ``repro.x.y``).
    imports: Set[str] = field(default_factory=set)
    #: Local name → dotted origin, for every import form in the file.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Local name → (module, original name) for ``from m import n``.
    import_bindings: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Top-level function definitions by name.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Top-level class definitions by name.
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Top-level simple assignments (``NAME = <expr>``) by name.
    constants: Dict[str, ast.Assign] = field(default_factory=dict)

    @property
    def is_package(self) -> bool:
        return self.path.name == "__init__.py"

    @classmethod
    def parse(cls, path: Path) -> Optional["ModuleInfo"]:
        try:
            data = path.read_bytes()
            source = data.decode("utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError):
            return None
        return cls.from_source(
            path, source, tree, hashlib.sha256(data).hexdigest()
        )

    @classmethod
    def from_source(
        cls, path: Path, source: str, tree: ast.Module, digest: str
    ) -> "ModuleInfo":
        info = cls(
            module=module_name(path),
            path=path,
            source=source,
            tree=tree,
            digest=digest,
        )
        info._index()
        return info

    def _index(self) -> None:
        is_package = self.is_package
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = (
                        alias.name if alias.asname
                        else alias.name.split(".")[0]
                    )
                    self.aliases[local] = origin
                    if _is_project(alias.name):
                        self.imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = resolve_relative(self.module, is_package, node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    if base:
                        self.aliases[local] = f"{base}.{alias.name}"
                        self.import_bindings[local] = (base, alias.name)
                if _is_project(base):
                    self.imports.add(base)
                    for alias in node.names:
                        # `from repro.x import y` may bind submodule y.
                        self.imports.add(f"{base}.{alias.name}")
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node  # type: ignore[assignment]
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.constants[target.id] = node

    def dotted_path(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted origin, if static.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when
        ``np`` aliases ``numpy``; ``None`` when the chain roots at a
        name this module never imported.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


class ProjectModel:
    """Module-name → :class:`ModuleInfo` with import-graph queries.

    Two populations of modules live here: the *linted set* (added via
    :meth:`add`) and on-demand *dependencies* loaded from a source root
    when a rule follows an import outside the linted paths (so a lint
    of ``src/repro/pipeline`` can still traverse into
    ``repro.analysis``).  Both are digested, so the incremental cache
    can watch every file that influenced a verdict.
    """

    def __init__(self) -> None:
        self._by_module: Dict[str, ModuleInfo] = {}
        self._linted: Set[str] = set()
        self._roots: List[Path] = []
        self._unresolvable: Set[str] = set()

    # -- population ----------------------------------------------------

    def add_root(self, root: Path) -> None:
        if root not in self._roots:
            self._roots.append(root)
            self._unresolvable.clear()

    def add(self, info: ModuleInfo, *, linted: bool = True) -> None:
        self._by_module[info.module] = info
        if linted:
            self._linted.add(info.module)

    # -- lookups -------------------------------------------------------

    def get(self, module: str) -> Optional[ModuleInfo]:
        """The info for ``module``, loading it from a root if needed."""
        info = self._by_module.get(module)
        if info is not None:
            return info
        if module in self._unresolvable or not module:
            return None
        relative = Path(*module.split("."))
        for root in self._roots:
            for candidate in (
                root / relative.with_suffix(".py"),
                root / relative / "__init__.py",
            ):
                if candidate.is_file():
                    loaded = ModuleInfo.parse(candidate)
                    if loaded is not None:
                        # Anchor the dotted name the caller asked for,
                        # even if module_name would differ.
                        loaded.module = module
                        self.add(loaded, linted=False)
                        return loaded
        self._unresolvable.add(module)
        return None

    def modules(self) -> List[ModuleInfo]:
        """Every loaded module, linted set first, in sorted order."""
        return [self._by_module[m] for m in sorted(self._by_module)]

    def linted_modules(self) -> List[ModuleInfo]:
        return [self._by_module[m] for m in sorted(self._linted)]

    def is_linted(self, module: str) -> bool:
        return module in self._linted

    # -- import graph --------------------------------------------------

    def import_closure(self, module: str) -> Set[str]:
        """Transitive project-internal imports of ``module``.

        Includes unresolved candidate names (``repro.x.y`` where ``y``
        turned out to be a function): harmless for cone computation,
        and it keeps a later-added module invalidating its importers.
        """
        closure: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            info = self._by_module.get(current)
            if info is None:
                continue
            for dep in info.imports:
                if dep not in closure:
                    closure.add(dep)
                    stack.append(dep)
        return closure

    def importers_of(self, module: str) -> Set[str]:
        """Loaded modules whose *direct* imports mention ``module``."""
        return {
            info.module
            for info in self._by_module.values()
            if module in info.imports
        }

    # -- name resolution -----------------------------------------------

    def resolve_name(
        self, module: str, name: str
    ) -> Optional[Tuple[ModuleInfo, ast.AST]]:
        """Follow re-export chains to the defining module, if resolvable.

        Returns ``(owner, node)`` where ``node`` is a function/class
        definition or the assignment that binds a module-level constant.
        """
        info = self.get(module)
        for _hop in range(MAX_RESOLVE_HOPS):
            if info is None:
                return None
            node: Optional[ast.AST] = (
                info.functions.get(name)
                or info.classes.get(name)
                or info.constants.get(name)
            )
            if node is not None:
                return info, node
            target = info.import_bindings.get(name)
            if target is None or not _is_project(target[0]):
                return None
            info, name = self.get(target[0]), target[1]
        return None

    def resolve_qualified(
        self, dotted: str
    ) -> Optional[Tuple[ModuleInfo, ast.AST]]:
        """Resolve ``pkg.mod.name`` to its defining module and node."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if self.get(module) is None:
                continue
            name = parts[split]
            resolved = self.resolve_name(module, name)
            if resolved is not None:
                return resolved
        return None

    # -- digests -------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over (module, file digest) for every loaded file.

        This is the "model digest" leg of the incremental-cache key: a
        byte change anywhere in the loaded closure changes it.
        """
        acc = hashlib.sha256()
        for info in self.modules():
            acc.update(info.module.encode("utf-8"))
            acc.update(b"\x00")
            acc.update(info.digest.encode("ascii"))
            acc.update(b"\n")
        return acc.hexdigest()


def build_model(
    files: Sequence[Path],
    *,
    preparsed: Optional[Dict[Path, ModuleInfo]] = None,
) -> ProjectModel:
    """Index ``files`` into a fresh :class:`ProjectModel`."""
    model = ProjectModel()
    for path in files:
        root = source_root(path)
        if root is not None:
            model.add_root(root)
        info = (preparsed or {}).get(path) or ModuleInfo.parse(path)
        if info is not None:
            model.add(info)
    return model


#: Visitor signature for :meth:`CallGraph.walk`: (owner module, function).
CallVisitor = Callable[[ModuleInfo, ast.FunctionDef], None]


class CallGraph:
    """Cycle-safe transitive walk of the project-internal call graph.

    Calls are resolved three ways, in order: a simple name defined in
    the current module, a simple name imported from a project module
    (following the binding), and a dotted path whose prefix aliases a
    project module (``runner.settle_job`` where ``runner`` imports
    ``repro.pipeline.runner``).  Parameter-valued callees — the
    ``map_items``-style generic fan-out — cannot be resolved statically
    and are skipped; the semantics there belong to the caller.
    """

    def __init__(self, model: ProjectModel, *, max_visited: int = 200) -> None:
        self.model = model
        self.max_visited = max_visited

    def resolve_call(
        self, info: ModuleInfo, call: ast.Call
    ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        """The project-internal function a call lands on, if static."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_simple(info, func.id)
        dotted = info.dotted_path(func)
        if dotted is not None and _is_project(dotted):
            resolved = self.model.resolve_qualified(dotted)
            if resolved is not None and isinstance(
                resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return resolved[0], resolved[1]
        return None

    def _resolve_simple(
        self, info: ModuleInfo, name: str
    ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        fn = info.functions.get(name)
        if fn is not None:
            return info, fn
        target = info.import_bindings.get(name)
        if target is not None and _is_project(target[0]):
            resolved = self.model.resolve_name(target[0], target[1])
            if resolved is not None and isinstance(
                resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return resolved[0], resolved[1]
        return None

    def walk(
        self,
        info: ModuleInfo,
        fn_name: str,
        visit: CallVisitor,
    ) -> None:
        """Visit ``fn_name`` and everything it transitively calls."""
        visited: Set[Tuple[str, str]] = set()
        start = self._resolve_simple(info, fn_name)
        if start is None:
            return
        stack: List[Tuple[ModuleInfo, ast.FunctionDef]] = [start]
        while stack and len(visited) < self.max_visited:
            owner, fn = stack.pop()
            key = (owner.module, fn.name)
            if key in visited:
                continue
            visited.add(key)
            visit(owner, fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(owner, node)
                    if callee is not None:
                        stack.append(callee)


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Every function definition in ``tree`` with a qualified-ish name.

    Yields top-level functions, methods (``Class.method``) and nested
    closures (``outer.<locals>.inner``) — the accounting rule needs the
    closures because the runner's ``settle`` lives inside ``run``.
    """

    def _walk(
        body: Sequence[ast.stmt], prefix: str
    ) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{node.name}"
                yield name, node  # type: ignore[misc]
                yield from _walk(node.body, f"{name}.<locals>.")
            elif isinstance(node, ast.ClassDef):
                yield from _walk(node.body, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                yield from _walk(
                    [s for s in ast.iter_child_nodes(node)
                     if isinstance(s, ast.stmt)],
                    prefix,
                )

    yield from _walk(tree.body, "")
