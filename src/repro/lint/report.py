"""Reporters: findings as human text or machine JSON.

The JSON document is what CI consumes (stable key order, a schema
version, and the grandfathered findings listed separately so a red
build always shows exactly what is *new*).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, available_rules

#: Version stamped into the JSON report.
REPORT_SCHEMA_VERSION = 1


def render_text(
    fresh: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    *,
    checked_files: int = 0,
) -> str:
    """Human-readable report, one ``path:line:col CODE message`` per line."""
    out: List[str] = []
    for finding in fresh:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    summary = (
        f"repro-lint: {len(fresh)} finding(s) in {checked_files} file(s)"
    )
    if baselined:
        summary += f" ({len(baselined)} baselined finding(s) suppressed)"
    out.append(summary)
    return "\n".join(out)


def render_json(
    fresh: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    *,
    checked_files: int = 0,
) -> str:
    """Machine-readable report (sorted keys, schema-versioned)."""
    payload: Dict[str, object] = {
        "lint_schema_version": REPORT_SCHEMA_VERSION,
        "rules": available_rules(),
        "checked_files": checked_files,
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
