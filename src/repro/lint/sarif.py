"""SARIF 2.1.0 reporter for repro-lint.

SARIF (Static Analysis Results Interchange Format) is what code
hosting UIs ingest for inline annotations; the CI lint job uploads the
document this module renders.  The mapping is deliberately small:

* each registered rule becomes a ``reportingDescriptor`` in the tool's
  ``driver.rules`` array;
* each fresh finding becomes a ``result`` at level ``error`` with one
  physical location (SARIF columns are 1-based, the engine's are
  0-based);
* baselined findings are still emitted, carrying a ``suppressions``
  entry of kind ``external`` so viewers show them greyed out instead
  of losing them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.engine import Finding, available_rules

#: The SARIF spec version this document conforms to.
SARIF_VERSION = "2.1.0"

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "2.0.0"


def _result(
    finding: Finding, rule_index: Dict[str, int], *, suppressed: bool
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        entry["suppressions"] = [
            {"kind": "external",
             "justification": "grandfathered in lint-baseline.json"}
        ]
    return entry


def render_sarif(
    fresh: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    *,
    checked_files: int = 0,
) -> str:
    """The findings as a SARIF 2.1.0 JSON document."""
    rules = available_rules()
    rule_ids = sorted(rules)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    descriptors: List[Dict[str, Any]] = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": rules[code]},
            "defaultConfiguration": {"level": "error"},
        }
        for code in rule_ids
    ]
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": _TOOL_NAME,
                "version": _TOOL_VERSION,
                "informationUri":
                    "https://example.invalid/repro-mc/lint",
                "rules": descriptors,
            }
        },
        "columnKind": "utf16CodeUnits",
        "properties": {"checkedFiles": checked_files},
        "results": [
            *(_result(f, rule_index, suppressed=False) for f in fresh),
            *(_result(f, rule_index, suppressed=True) for f in baselined),
        ],
    }
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=True)
