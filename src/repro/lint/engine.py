"""Core of ``repro-lint``: findings, the rule registry, and the driver.

A *rule* is a callable taking a :class:`LintContext` (one parsed source
file plus project-wide lookups) and yielding :class:`Finding` records.
Rules register themselves under a stable code (``RL001`` ...) via
:func:`register`; the driver (:func:`lint_paths`) walks the requested
paths, parses each ``*.py`` once, runs every selected rule, then drops
findings suppressed by a ``# repro-lint: ignore[CODE]`` comment on the
offending line.

The engine is deliberately dependency-free (stdlib ``ast`` only) and
imports nothing from the analysed packages, so linting can never be
distorted by the code under analysis.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Suppression marker: ``# repro-lint: ignore`` silences every rule on
#: that line, ``# repro-lint: ignore[RL002]`` (comma-separated codes
#: allowed) silences just those rules.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> str:
        """Identity used to match a finding against the baseline.

        Line and column are deliberately excluded so unrelated edits
        above a grandfathered finding do not un-baseline it; a file is
        identified by path, rule and message text.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule may inspect about one source file.

    ``module`` is the dotted module name when the file lives under a
    recognised package root (``.../src/repro/analysis/dbf.py`` →
    ``repro.analysis.dbf``), else the stem.  ``project`` indexes every
    file seen in this run by module name, letting cross-module rules
    (layering, fork-safety traversal) resolve project imports without
    re-reading the tree.
    """

    path: Path
    source: str
    tree: ast.Module
    module: str
    project: "ProjectIndex"
    lines: List[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectIndex:
    """Lazy module-name → parsed-file index over the linted tree.

    Rules that follow imports (RL004's transitive traversal, RL005's
    re-export resolution) ask here; files outside the linted paths but
    inside the same source root are parsed on demand, so a lint of
    ``src/repro/pipeline`` can still traverse into ``repro.analysis``.
    """

    def __init__(self) -> None:
        self._by_module: Dict[str, LintContext] = {}
        self._roots: List[Path] = []

    def add_root(self, root: Path) -> None:
        if root not in self._roots:
            self._roots.append(root)

    def add(self, context: LintContext) -> None:
        self._by_module[context.module] = context

    def get(self, module: str) -> Optional[LintContext]:
        """The context for ``module``, loading it from a root if needed."""
        context = self._by_module.get(module)
        if context is not None:
            return context
        relative = Path(*module.split("."))
        for root in self._roots:
            for candidate in (
                root / relative.with_suffix(".py"),
                root / relative / "__init__.py",
            ):
                if candidate.is_file():
                    loaded = _parse_file(candidate, self)
                    if loaded is not None:
                        self._by_module[module] = loaded
                        return loaded
        return None


Rule = Callable[[LintContext], Iterator[Finding]]

#: code → (rule function, one-line summary); populated by :func:`register`.
_REGISTRY: Dict[str, tuple] = {}


def register(code: str, summary: str) -> Callable[[Rule], Rule]:
    """Class/function decorator adding a rule to the registry."""

    def deco(rule: Rule) -> Rule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = (rule, summary)
        return rule

    return deco


def available_rules() -> Dict[str, str]:
    """Registered rule codes mapped to their one-line summaries."""
    return {code: summary for code, (_rule, summary) in sorted(_REGISTRY.items())}


def _module_name(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` layout aware)."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    return ".".join(parts) if parts else path.stem


def _source_root(path: Path) -> Optional[Path]:
    """The directory that dotted imports resolve against, if any."""
    resolved = path.resolve()
    for parent in resolved.parents:
        if parent.name == "repro":
            return parent.parent
    return None


def _parse_file(path: Path, project: ProjectIndex) -> Optional[LintContext]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return None
    return LintContext(
        path=path, source=source, tree=tree,
        module=_module_name(path), project=project,
    )


def _suppressed_lines(context: LintContext) -> Dict[int, Optional[Set[str]]]:
    """line → suppressed codes (``None`` means all rules) for one file.

    Comments are found with :mod:`tokenize` rather than a substring
    scan, so a marker inside a string literal does not suppress
    anything.
    """
    suppressed: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(context.source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            line = token.start[0]
            if codes is None:
                suppressed[line] = None
            else:
                wanted = {code.strip() for code in codes.split(",") if code.strip()}
                existing = suppressed.get(line)
                if line not in suppressed:
                    suppressed[line] = wanted
                elif existing is not None:
                    existing.update(wanted)
    except (tokenize.TokenError, IndentationError, StopIteration):
        pass
    return suppressed


def _is_suppressed(
    finding: Finding, suppressed: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = suppressed.get(finding.line, ...)
    if codes is ...:
        return False
    return codes is None or finding.rule in codes


def lint_file(
    context: LintContext, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules over one parsed file."""
    selected = sorted(rules) if rules is not None else sorted(_REGISTRY)
    findings: List[Finding] = []
    for code in selected:
        entry = _REGISTRY.get(code)
        if entry is None:
            raise ValueError(
                f"unknown lint rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
            )
        rule, _summary = entry
        findings.extend(rule(context))
    suppressed = _suppressed_lines(context)
    return [f for f in findings if not _is_suppressed(f, suppressed)]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` under ``paths`` (files accepted directly), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[Path], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in stable order."""
    project = ProjectIndex()
    contexts: List[LintContext] = []
    for file_path in iter_python_files(paths):
        root = _source_root(file_path)
        if root is not None:
            project.add_root(root)
        context = _parse_file(file_path, project)
        if context is not None:
            contexts.append(context)
            project.add(context)
    findings: List[Finding] = []
    for context in contexts:
        findings.extend(lint_file(context, rules))
    return sorted(findings, key=Finding.sort_key)
