"""Core of ``repro-lint`` v2: findings, the registry, and the driver.

A *rule* is a callable taking a :class:`LintContext` (one parsed source
file plus the whole-program :class:`~repro.lint.model.ProjectModel`)
and yielding :class:`Finding` records.  Rules register themselves under
a stable code (``RL001`` ...) via :func:`register`.

The driver is two-phase: phase one indexes every requested file into
the project model (import graph, alias tables, digests — optionally
fanning the content hashing out over a process pool); phase two runs
the selected rules with that model in hand.  :func:`lint_project`
additionally consults the incremental cache
(:mod:`repro.lint.cache`): a warm run over an unchanged tree
re-analyzes zero files, and an edit re-analyzes only the changed files
plus their reverse-dependency cone.

Suppression comments must justify themselves: ``# repro-lint:
ignore[RL002] exact dedup mirrors the scalar oracle`` silences RL002 on
that line, while a bare ``# repro-lint: ignore[RL002]`` suppresses
nothing and instead raises the engine's own hygiene finding (RL000).

The engine is deliberately dependency-free (stdlib ``ast`` only) and
imports nothing from the analysed packages, so linting can never be
distorted by the code under analysis.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint import cache as lint_cache
from repro.lint.model import (
    ModuleInfo,
    ProjectModel,
    build_model,
    module_name as _model_module_name,
)

#: Suppression marker: ``# repro-lint: ignore[RL002] <why>`` silences
#: the listed rules on that line; ``# repro-lint: ignore <why>``
#: silences every rule.  The trailing justification is mandatory — a
#: reasonless marker is inert and raises RL000 instead.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
    r"(?P<reason>[^#]*)"
)

#: Engine-owned hygiene code (reasonless suppression markers).
HYGIENE_CODE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> str:
        """Identity used to match a finding against the baseline.

        Line and column are deliberately excluded so unrelated edits
        above a grandfathered finding do not un-baseline it; a file is
        identified by path, rule and message text.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule may inspect about one source file.

    ``module`` is the dotted module name when the file lives under a
    recognised package root (``.../src/repro/analysis/dbf.py`` →
    ``repro.analysis.dbf``), else the stem.  ``model`` is the
    whole-program project model built in phase one; ``info`` is this
    file's own entry in it.  ``contracts`` carries the committed
    serialized-surface contract data when a contract file was supplied
    (RL006 stays silent without one).
    """

    path: Path
    source: str
    tree: ast.Module
    module: str
    model: ProjectModel
    info: ModuleInfo
    contracts: Optional[Dict[str, object]] = None
    lines: List[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


Rule = Callable[[LintContext], Iterator[Finding]]

#: code → (rule function, one-line summary); populated by :func:`register`.
_REGISTRY: Dict[str, Tuple[Rule, str]] = {}


def register(code: str, summary: str) -> Callable[[Rule], Rule]:
    """Class/function decorator adding a rule to the registry."""

    def deco(rule: Rule) -> Rule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = (rule, summary)
        return rule

    return deco


def available_rules() -> Dict[str, str]:
    """Registered rule codes mapped to their one-line summaries."""
    return {code: summary for code, (_rule, summary) in sorted(_REGISTRY.items())}


@register(HYGIENE_CODE, "suppression hygiene: every repro-lint ignore "
                        "marker carries a written justification")
def _hygiene_placeholder(context: LintContext) -> Iterator[Finding]:
    # RL000 findings are emitted by the engine's suppression scanner
    # (they come from comments, not the AST); this placeholder exists
    # so the code shows up in available_rules() and --rules validation.
    return iter(())


def _module_name(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` layout aware)."""
    return _model_module_name(path)


def _scan_suppressions(
    source: str, path: str
) -> Tuple[Dict[int, Optional[Set[str]]], List[Finding]]:
    """(line → suppressed codes, hygiene findings) for one file.

    ``None`` as the code set means "all rules".  Comments are found
    with :mod:`tokenize` rather than a substring scan, so a marker
    inside a string literal does not suppress anything.  Markers with
    no justification text after the code list suppress nothing and
    yield an RL000 finding instead.
    """
    suppressed: Dict[int, Optional[Set[str]]] = {}
    hygiene: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            reason = match.group("reason").strip(" \t-—:;,.")
            if not reason:
                hygiene.append(Finding(
                    rule=HYGIENE_CODE,
                    path=path,
                    line=line,
                    col=token.start[1],
                    message=(
                        "suppression without justification: follow the "
                        "marker with a reason, e.g. `# repro-lint: "
                        "ignore[RL002] exact dedup mirrors the oracle`"
                    ),
                ))
                continue
            codes = match.group("codes")
            if codes is None:
                suppressed[line] = None
            else:
                wanted = {
                    code.strip() for code in codes.split(",") if code.strip()
                }
                existing = suppressed.get(line)
                if line not in suppressed:
                    suppressed[line] = wanted
                elif existing is not None:
                    existing.update(wanted)
    except (tokenize.TokenError, IndentationError, StopIteration):
        pass
    return suppressed, hygiene


def _is_suppressed(
    finding: Finding, suppressed: Dict[int, Optional[Set[str]]]
) -> bool:
    if finding.rule == HYGIENE_CODE:
        return False  # hygiene findings are not themselves suppressable
    codes = suppressed.get(finding.line)
    if finding.line not in suppressed:
        return False
    return codes is None or finding.rule in codes


def _select(rules: Optional[Sequence[str]]) -> List[str]:
    selected = sorted(rules) if rules is not None else sorted(_REGISTRY)
    for code in selected:
        if code not in _REGISTRY:
            raise ValueError(
                f"unknown lint rule {code!r}; known: "
                f"{', '.join(sorted(_REGISTRY))}"
            )
    return selected


def lint_file(
    context: LintContext, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules over one parsed file."""
    selected = _select(rules)
    findings: List[Finding] = []
    for code in selected:
        rule, _summary = _REGISTRY[code]
        findings.extend(rule(context))
    suppressed, hygiene = _scan_suppressions(context.source, str(context.path))
    if HYGIENE_CODE in selected:
        findings.extend(hygiene)
    return [f for f in findings if not _is_suppressed(f, suppressed)]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` under ``paths`` (files accepted directly), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate


@dataclass
class LintRun:
    """Result of one :func:`lint_project` invocation."""

    findings: List[Finding]
    #: Every file in the linted set.
    checked_files: List[Path]
    #: Files the rules actually ran over this time.
    analyzed_files: List[Path]
    #: Files whose findings were served from the incremental cache.
    cached_files: List[Path]
    #: ``True`` when no usable cache state existed (full analysis).
    cold: bool
    duration_s: float
    model: Optional[ProjectModel] = None


def _context_for(
    info: ModuleInfo,
    model: ProjectModel,
    contracts: Optional[Dict[str, object]],
) -> LintContext:
    return LintContext(
        path=info.path,
        source=info.source,
        tree=info.tree,
        module=info.module,
        model=model,
        info=info,
        contracts=contracts,
    )


def _load_dep_entries(
    model: ProjectModel,
    entries: Dict[str, Dict[str, object]],
    linted: Set[str],
) -> None:
    """Bring previously-seen dependency files back into the model.

    Cone computation needs their import edges: a lint of a subtree can
    depend on modules outside it (RL004 traversal, RL006 surfaces), and
    an edit to one of those must still invalidate its importers.
    """
    for path_str, entry in entries.items():
        if path_str in linted:
            continue
        path = Path(path_str)
        if not path.is_file():
            continue
        info = ModuleInfo.parse(path)
        if info is not None:
            stored = entry.get("module")
            if isinstance(stored, str) and stored:
                info.module = stored
            model.add(info, linted=False)


def lint_project(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    *,
    cache_path: Optional[Path] = None,
    jobs: int = 0,
    contracts_path: Optional[Path] = None,
) -> LintRun:
    """Two-phase whole-program lint with optional incremental caching.

    Phase one digests and indexes every file under ``paths`` (hashing
    fans out over a process pool when ``jobs`` > 1).  With a cache, the
    run then re-analyzes only files whose content digest changed plus
    every linted file whose transitive import closure reaches a changed
    module; an unchanged tree re-analyzes nothing and never even
    parses.  Phase two runs the selected rules with the full project
    model in context.
    """
    started = time.perf_counter()
    selected = _select(rules)
    files = list(iter_python_files(paths))
    file_keys = [str(p) for p in files]
    contracts, contracts_digest = lint_cache.load_contracts(contracts_path)
    engine_key = lint_cache.engine_key(selected, contracts_digest)

    digests = lint_cache.digest_files(files, jobs=jobs)
    stored = lint_cache.load_cache(cache_path)
    entries: Dict[str, Dict[str, object]] = {}
    if stored is not None and stored.get("engine_key") == engine_key:
        raw = stored.get("files")
        if isinstance(raw, dict):
            entries = raw

    linted_set = set(file_keys)
    changed: Set[str] = set()
    if entries:
        for path_str in file_keys:
            entry = entries.get(path_str)
            if entry is None or entry.get("digest") != digests.get(path_str):
                changed.add(path_str)
        for path_str, entry in entries.items():
            if path_str in linted_set:
                continue
            if entry.get("linted", True):
                changed.add(path_str)  # left the linted set
                continue
            if lint_cache.path_digest(path_str) != entry.get("digest"):
                changed.add(path_str)

        if not changed:
            # Warm fast path: nothing moved, answer entirely from cache
            # without parsing a single file.
            findings = sorted(
                (
                    Finding(**f)  # type: ignore[arg-type]
                    for path_str in file_keys
                    for f in entries[path_str].get("findings", ())
                    if isinstance(f, dict)
                ),
                key=Finding.sort_key,
            )
            return LintRun(
                findings=findings,
                checked_files=files,
                analyzed_files=[],
                cached_files=list(files),
                cold=False,
                duration_s=time.perf_counter() - started,
            )

    model = build_model(files)
    if entries:
        _load_dep_entries(model, entries, linted_set)

    changed_modules: Set[str] = set()
    for path_str in changed:
        entry = entries.get(path_str)
        module = entry.get("module") if entry else None
        if isinstance(module, str) and module:
            changed_modules.add(module)
    for info in model.linted_modules():
        if str(info.path) in changed:
            changed_modules.add(info.module)

    reused: Dict[str, List[Finding]] = {}
    to_analyze: List[ModuleInfo] = []
    for info in model.linted_modules():
        path_str = str(info.path)
        entry = entries.get(path_str)
        if (
            entry is None
            or path_str in changed
            or changed_modules & (
                model.import_closure(info.module) | {info.module}
            )
        ):
            to_analyze.append(info)
        else:
            reused[path_str] = [
                Finding(**f)  # type: ignore[arg-type]
                for f in entry.get("findings", ())
                if isinstance(f, dict)
            ]

    fresh: Dict[str, List[Finding]] = {}
    for info in to_analyze:
        context = _context_for(info, model, contracts)
        fresh[str(info.path)] = lint_file(context, selected)

    findings = sorted(
        (f for per_file in (*reused.values(), *fresh.values())
         for f in per_file),
        key=Finding.sort_key,
    )

    if cache_path is not None:
        lint_cache.write_cache(
            cache_path,
            engine_key=engine_key,
            model=model,
            findings_by_path={**reused, **fresh},
        )

    return LintRun(
        findings=findings,
        checked_files=files,
        analyzed_files=[info.path for info in to_analyze],
        cached_files=[Path(p) for p in sorted(reused)],
        cold=not entries,
        duration_s=time.perf_counter() - started,
        model=model,
    )


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    *,
    contracts_path: Optional[Path] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in stable order."""
    return lint_project(
        paths, rules, contracts_path=contracts_path
    ).findings
