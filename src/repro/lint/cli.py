"""``repro-mc lint``: run the repro-lint rule pack from the command line.

Usage::

    repro-mc lint src/                      # text report, exit 1 on findings
    repro-mc lint src/ --format json        # machine-readable
    repro-mc lint src/ --format sarif       # SARIF 2.1.0 (CI upload)
    repro-mc lint src/ --rules RL001,RL003  # a subset of the pack
    repro-mc lint src/ --lint-cache .repro-lint-cache.json
    repro-mc lint src/ --changed-only       # report only re-analyzed files
    repro-mc lint src/ --write-contracts    # regenerate lint-contracts.json
    repro-mc lint src/ --write-baseline     # grandfather current findings
    repro-mc lint src/ --baseline other.json

Exit status: **0** when the tree is clean, **1** on any fresh (non-
baselined) finding, **2** on usage errors, **3** when every finding is
baselined — clean-but-grandfathered is distinguishable from clean, so
CI can track baseline burn-down without re-parsing reports.

``--lint-cache`` enables the incremental cache: a warm run over an
unchanged tree re-analyzes zero files, and an edit re-analyzes only
the changed files plus their reverse-dependency cone.  The cache
summary (cold/warm, analyzed/cached counts, duration) always goes to
stderr so stdout stays pure JSON under ``--format json``/``sarif``.

``--write-baseline`` refuses to run while RL006 (contract drift)
findings are present: a drifted serialized surface must be fixed or
re-versioned, never grandfathered.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import DEFAULT_CONTRACTS_NAME
from repro.lint.contracts import compute_contracts
from repro.lint.engine import (
    available_rules,
    iter_python_files,
    lint_project,
)
from repro.lint.model import build_model
from repro.lint.report import render_json, render_text
from repro.lint.sarif import render_sarif

_CONTRACT_RULE = "RL006"


def _note(message: str) -> None:
    print(f"repro-lint: {message}", file=sys.stderr)


def run_lint_command(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    rules: Optional[str] = None,
    cache_path: Optional[str] = None,
    changed_only: bool = False,
    contracts_path: Optional[str] = None,
    write_contracts: bool = False,
    jobs: int = 0,
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    targets = [Path(p) for p in (paths or ["src"])]
    for target in targets:
        if not target.exists():
            _note(f"path does not exist: {target}")
            return 2

    selected: Optional[List[str]] = None
    if rules:
        selected = [code.strip() for code in rules.split(",") if code.strip()]
        unknown = sorted(set(selected) - set(available_rules()))
        if unknown:
            _note(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(available_rules())}"
            )
            return 2

    contracts_file = (
        Path(contracts_path) if contracts_path
        else Path(DEFAULT_CONTRACTS_NAME)
    )

    if write_contracts:
        model = build_model(list(iter_python_files(targets)))
        document = compute_contracts(model)
        contracts_file.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        _note(
            f"wrote {len(document['surfaces'])} surface contract(s) to "
            f"{contracts_file}"
        )
        return 0

    run = lint_project(
        targets,
        selected,
        cache_path=Path(cache_path) if cache_path else None,
        jobs=jobs,
        contracts_path=contracts_file if contracts_file.is_file() else None,
    )
    _note(
        f"{len(run.checked_files)} file(s) checked, "
        f"{len(run.analyzed_files)} analyzed, "
        f"{len(run.cached_files)} from cache "
        f"({'cold' if run.cold else 'warm'}, {run.duration_s:.2f}s)"
    )

    findings = run.findings
    if changed_only:
        analyzed = {str(path) for path in run.analyzed_files}
        findings = [f for f in findings if f.path in analyzed]

    baseline_file = Path(baseline_path) if baseline_path else Path(
        DEFAULT_BASELINE_NAME
    )
    if update_baseline:
        drifted = [f for f in findings if f.rule == _CONTRACT_RULE]
        if drifted:
            _note(
                f"refusing to baseline {len(drifted)} RL006 contract-"
                f"drift finding(s): bump the version constant (or revert "
                f"the surface change) and regenerate lint-contracts.json "
                f"with --write-contracts instead"
            )
            for finding in drifted:
                _note(f"  {finding.path}:{finding.line} {finding.message}")
            return 1
        write_baseline(baseline_file, findings)
        _note(f"wrote {len(findings)} finding(s) to {baseline_file}")
        return 0

    baseline = load_baseline(baseline_file)
    fresh, grandfathered = baseline.split(findings)

    checked = len(run.checked_files)
    if output_format == "json":
        print(render_json(fresh, grandfathered, checked_files=checked))
    elif output_format == "sarif":
        print(render_sarif(fresh, grandfathered, checked_files=checked))
    else:
        print(render_text(fresh, grandfathered, checked_files=checked))
    if fresh:
        return 1
    return 3 if grandfathered else 0
