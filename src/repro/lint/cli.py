"""``repro-mc lint``: run the repro-lint rule pack from the command line.

Usage::

    repro-mc lint src/                      # text report, exit 1 on findings
    repro-mc lint src/ --format json        # machine-readable (CI)
    repro-mc lint src/ --rules RL001,RL003  # a subset of the pack
    repro-mc lint src/ --write-baseline     # grandfather current findings
    repro-mc lint src/ --baseline other.json

Exit status is 0 when every finding is baselined (or there are none),
1 otherwise — the contract the CI ``lint`` job relies on.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import available_rules, iter_python_files, lint_paths
from repro.lint.report import render_json, render_text


def run_lint_command(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    rules: Optional[str] = None,
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    targets = [Path(p) for p in (paths or ["src"])]
    for target in targets:
        if not target.exists():
            print(f"repro-lint: path does not exist: {target}")
            return 2

    selected: Optional[List[str]] = None
    if rules:
        selected = [code.strip() for code in rules.split(",") if code.strip()]
        unknown = sorted(set(selected) - set(available_rules()))
        if unknown:
            print(
                f"repro-lint: unknown rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(available_rules())}"
            )
            return 2

    checked = len(list(iter_python_files(targets)))
    findings = lint_paths(targets, selected)

    baseline_file = Path(baseline_path) if baseline_path else Path(
        DEFAULT_BASELINE_NAME
    )
    if update_baseline:
        write_baseline(baseline_file, findings)
        print(
            f"repro-lint: wrote {len(findings)} finding(s) to "
            f"{baseline_file}"
        )
        return 0

    baseline = load_baseline(baseline_file)
    fresh, grandfathered = baseline.split(findings)

    if output_format == "json":
        print(render_json(fresh, grandfathered, checked_files=checked))
    else:
        print(render_text(fresh, grandfathered, checked_files=checked))
    return 1 if fresh else 0
