"""Light dataflow for repro-lint: value lattice and path enumeration.

Two analyses power the v2 semantic rules:

* :class:`Dataflow` — a per-function forward pass over an abstract
  value lattice (:class:`Value`): reaching definitions with branch
  joins, a numpy constructor/dtype transfer table, and container kinds
  (set, dict, sorted sequence, hashlib digest, ``[None] * n`` settle
  buffer).  RL007 asks it "is this receiver a float array?", RL009 asks
  "is this iterable a set?", RL008 asks "is this subscript store a
  settle-buffer write?".
* :func:`enumerate_paths` — a CFG-lite execution-path enumerator over a
  statement list (both ``if`` arms, loop body zero-or-once, ``try``
  body plus each handler, terminators cut the path), used by RL008 to
  prove every settle path increments exactly one disposition counter.

Everything here is conservative by construction: when the lattice
cannot prove a fact it answers ``UNKNOWN`` and rules stay silent —
the engine prefers silence to noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# -- the value lattice -------------------------------------------------

#: Value kinds.  ``unknown`` is the lattice top.
ARRAY = "array"
SCALAR = "scalar"
LIST = "list"
TUPLE = "tuple"
SET = "set"
DICT = "dict"
DICT_VIEW = "dict-view"
STR = "str"
DIGEST = "digest"
NONE_BUFFER = "none-buffer"
UNKNOWN = "unknown"

#: dtype lattice for arrays/scalars, coarse on purpose.
FLOAT64 = "float64"
FLOAT32 = "float32"
INT = "int64"
BOOL = "bool"

_PROMOTION_ORDER = {BOOL: 0, INT: 1, FLOAT32: 2, FLOAT64: 3}


@dataclass(frozen=True)
class Value:
    """One abstract value: a kind, an optional dtype, and provenance."""

    kind: str = UNKNOWN
    dtype: Optional[str] = None
    #: Order is guaranteed (a ``sorted()`` / ``np.sort`` result).
    ordered: bool = False
    #: dtype came from an explicit ``dtype=`` argument.
    explicit_dtype: bool = False

    @property
    def is_float_array(self) -> bool:
        return self.kind == ARRAY and self.dtype in (FLOAT32, FLOAT64)

    @property
    def is_unordered(self) -> bool:
        return self.kind == SET


UNKNOWN_VALUE = Value()


def join(a: Value, b: Value) -> Value:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if a.kind == b.kind:
        dtype = a.dtype if a.dtype == b.dtype else None
        return Value(
            kind=a.kind,
            dtype=dtype,
            ordered=a.ordered and b.ordered,
            explicit_dtype=a.explicit_dtype and b.explicit_dtype,
        )
    return UNKNOWN_VALUE


def promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Numpy-style dtype promotion; ``None`` poisons."""
    if a is None or b is None:
        return None
    return a if _PROMOTION_ORDER[a] >= _PROMOTION_ORDER[b] else b


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


#: dtype spellings accepted in ``dtype=`` positions.
_DTYPE_NAMES = {
    "float": FLOAT64, "numpy.float64": FLOAT64, "numpy.double": FLOAT64,
    "numpy.float32": FLOAT32, "numpy.single": FLOAT32,
    "int": INT, "numpy.int64": INT, "numpy.int32": INT, "numpy.intp": INT,
    "bool": BOOL, "numpy.bool_": BOOL,
    "float64": FLOAT64, "float32": FLOAT32, "int64": INT, "int32": INT,
}

#: numpy constructors with a fixed float64 default dtype.
_FLOAT64_DEFAULT_CTORS = {"zeros", "ones", "empty", "linspace"}

#: numpy constructors that infer dtype from their data argument.
_INFERRING_CTORS = {"array", "asarray", "ascontiguousarray", "atleast_1d",
                    "full", "fromiter"}

_HASHLIB_CTORS = {"sha256", "sha1", "sha384", "sha512", "md5", "blake2b",
                  "blake2s", "new"}

_SET_METHODS = {"union", "difference", "intersection",
                "symmetric_difference", "copy"}


def dtype_of_expr(
    node: Optional[ast.AST], aliases: Dict[str, str]
) -> Optional[str]:
    """The dtype a ``dtype=`` argument denotes, if recognisable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    dotted = _dotted(node, aliases)
    if dotted is not None:
        return _DTYPE_NAMES.get(dotted)
    return None


class Dataflow:
    """Forward abstract interpretation of one function (or module) body.

    After :meth:`run`, :meth:`value_of` answers for every ``ast.Name``
    load, ``ast.Call`` and ``ast.BinOp`` the abstract value the pass
    computed at that point.  Branches are joined (equal values survive,
    disagreements decay to ``UNKNOWN``); loop bodies run once; nested
    function definitions are not descended into (they get their own
    pass, seeded with the enclosing environment via ``initial``).
    """

    def __init__(self, aliases: Dict[str, str]) -> None:
        self.aliases = aliases
        self._values: Dict[int, Value] = {}

    # -- public API ----------------------------------------------------

    @classmethod
    def of_function(
        cls,
        fn: ast.FunctionDef,
        aliases: Dict[str, str],
        initial: Optional[Dict[str, Value]] = None,
    ) -> "Dataflow":
        flow = cls(aliases)
        env = dict(initial or {})
        for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
            env[arg.arg] = UNKNOWN_VALUE
        flow._exec_block(fn.body, env)
        return flow

    @classmethod
    def of_module(cls, tree: ast.Module, aliases: Dict[str, str]) -> "Dataflow":
        flow = cls(aliases)
        flow._exec_block(tree.body, {})
        return flow

    def value_of(self, node: ast.AST) -> Value:
        return self._values.get(id(node), UNKNOWN_VALUE)

    # -- statement execution -------------------------------------------

    def _exec_block(
        self, body: Sequence[ast.stmt], env: Dict[str, Value]
    ) -> Dict[str, Value]:
        for stmt in body:
            env = self._exec(stmt, env)
        return env

    def _exec(self, stmt: ast.stmt, env: Dict[str, Value]) -> Dict[str, Value]:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            value = (
                self._eval(stmt.value, env)
                if stmt.value is not None else UNKNOWN_VALUE
            )
            self._bind(stmt.target, value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            right = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                left = env.get(stmt.target.id, UNKNOWN_VALUE)
                env[stmt.target.id] = self._binop_value(left, right)
            return env
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = self._exec_block(stmt.body, dict(env))
            else_env = self._exec_block(stmt.orelse, dict(env))
            return self._join_env(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, env)
            body_env = dict(env)
            self._bind(stmt.target, self._element_of(iterable), body_env)
            body_env = self._exec_block(stmt.body, body_env)
            body_env = self._exec_block(stmt.orelse, body_env)
            return self._join_env(env, body_env)
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = self._exec_block(stmt.body, dict(env))
            return self._join_env(env, body_env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(stmt.body, dict(env))
            joined = body_env
            for handler in stmt.handlers:
                handler_env = self._exec_block(handler.body, dict(env))
                joined = self._join_env(joined, handler_env)
            joined = self._exec_block(stmt.orelse, joined)
            return self._exec_block(stmt.finalbody, joined)
        if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return env
        # Nested defs, imports, pass, global, etc.: no dataflow effect.
        return env

    def _bind(
        self, target: ast.AST, value: Value, env: Dict[str, Value]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, UNKNOWN_VALUE, env)
        # Attribute/subscript stores do not rebind a tracked name.

    @staticmethod
    def _join_env(
        a: Dict[str, Value], b: Dict[str, Value]
    ) -> Dict[str, Value]:
        out: Dict[str, Value] = {}
        for name in set(a) | set(b):
            out[name] = join(a.get(name, UNKNOWN_VALUE),
                             b.get(name, UNKNOWN_VALUE))
        return out

    # -- expression evaluation -----------------------------------------

    def _eval(self, node: ast.expr, env: Dict[str, Value]) -> Value:
        value = self._eval_inner(node, env)
        if isinstance(node, (ast.Name, ast.Call, ast.BinOp, ast.Attribute,
                             ast.Subscript)):
            self._values[id(node)] = value
        return value

    def _eval_inner(self, node: ast.expr, env: Dict[str, Value]) -> Value:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Value(SCALAR, BOOL)
            if isinstance(node.value, float):
                return Value(SCALAR, FLOAT64)
            if isinstance(node.value, int):
                return Value(SCALAR, INT)
            if isinstance(node.value, str):
                return Value(STR)
            return UNKNOWN_VALUE
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN_VALUE)
        if isinstance(node, (ast.List, ast.Tuple)):
            for elt in node.elts:
                self._eval(elt, env)
            kind = LIST if isinstance(node, ast.List) else TUPLE
            return Value(kind, self._literal_dtype(node.elts, env))
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self._eval(elt, env)
            return Value(SET, self._literal_dtype(node.elts, env))
        if isinstance(node, ast.Dict):
            for child in [*node.keys, *node.values]:
                if child is not None:
                    self._eval(child, env)
            return Value(DICT)
        if isinstance(node, ast.SetComp):
            self._eval_comp(node, env)
            return Value(SET)
        if isinstance(node, ast.DictComp):
            self._eval_comp(node, env)
            return Value(DICT)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._eval_comp(node, env)
            return Value(LIST)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if (
                isinstance(node.op, ast.Mult)
                and self._is_none_list(node.left)
            ):
                return Value(NONE_BUFFER)
            if (
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor))
                and left.kind == SET and right.kind == SET
            ):
                return Value(SET)
            return self._binop_value(left, right, true_div=isinstance(
                node.op, ast.Div))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return Value(SCALAR, BOOL)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join(self._eval(node.body, env),
                        self._eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice, env)
            if base.kind == ARRAY:
                if isinstance(node.slice, ast.Slice):
                    return base
                return Value(SCALAR, base.dtype)
            return UNKNOWN_VALUE
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            return UNKNOWN_VALUE
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return Value(STR)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return UNKNOWN_VALUE

    def _eval_comp(self, node: ast.expr, env: Dict[str, Value]) -> None:
        inner = dict(env)
        for gen in getattr(node, "generators", []):
            iterable = self._eval(gen.iter, inner)
            self._bind(gen.target, self._element_of(iterable), inner)
            for cond in gen.ifs:
                self._eval(cond, inner)
        for attr in ("elt", "key", "value"):
            child = getattr(node, attr, None)
            if isinstance(child, ast.expr):
                self._eval(child, inner)

    @staticmethod
    def _is_none_list(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.List)
            and len(node.elts) == 1
            and isinstance(node.elts[0], ast.Constant)
            and node.elts[0].value is None
        )

    def _literal_dtype(
        self, elts: Sequence[ast.expr], env: Dict[str, Value]
    ) -> Optional[str]:
        dtype: Optional[str] = None
        for elt in elts:
            value = self._values.get(id(elt))
            if value is None or value.kind != SCALAR or value.dtype is None:
                # float(x) and friends still count as float elements.
                value = self._eval_inner(elt, env)
            if value.kind != SCALAR or value.dtype is None:
                return None
            dtype = value.dtype if dtype is None else promote(dtype,
                                                              value.dtype)
        return dtype

    @staticmethod
    def _element_of(iterable: Value) -> Value:
        if iterable.kind == ARRAY:
            return Value(SCALAR, iterable.dtype)
        return UNKNOWN_VALUE

    def _binop_value(
        self, left: Value, right: Value, *, true_div: bool = False
    ) -> Value:
        numeric = (ARRAY, SCALAR)
        if left.kind in numeric and right.kind in numeric:
            kind = ARRAY if ARRAY in (left.kind, right.kind) else SCALAR
            dtype = promote(left.dtype, right.dtype)
            if true_div and dtype in (INT, BOOL):
                dtype = FLOAT64
            return Value(kind, dtype)
        if left.kind in (LIST, TUPLE, STR) and right.kind == left.kind:
            return Value(left.kind)
        return UNKNOWN_VALUE

    # -- call transfer table -------------------------------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, Value]) -> Value:
        arg_values = [self._eval(arg, env) for arg in node.args]
        for kw in node.keywords:
            self._eval(kw.value, env)

        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, env)
            method = self._method_call(func.attr, receiver, node)
            if method is not None:
                return method

        dotted = _dotted(func, self.aliases)
        if dotted is None:
            return UNKNOWN_VALUE
        if dotted.startswith("numpy."):
            return self._numpy_call(dotted[len("numpy."):], node, arg_values)
        if dotted.startswith("hashlib.") and (
            dotted[len("hashlib."):] in _HASHLIB_CTORS
        ):
            return Value(DIGEST)
        if dotted == "sorted":
            return Value(LIST, ordered=True)
        if dotted in ("set", "frozenset"):
            return Value(SET)
        if dotted == "dict":
            return Value(DICT)
        if dotted in ("list", "tuple"):
            kind = LIST if dotted == "list" else TUPLE
            inner = arg_values[0] if arg_values else UNKNOWN_VALUE
            return Value(kind, inner.dtype, ordered=inner.ordered)
        if dotted == "float":
            return Value(SCALAR, FLOAT64)
        if dotted in ("int", "len", "round"):
            return Value(SCALAR, INT)
        if dotted == "bool":
            return Value(SCALAR, BOOL)
        if dotted == "str":
            return Value(STR)
        return UNKNOWN_VALUE

    def _method_call(
        self, method: str, receiver: Value, node: ast.Call
    ) -> Optional[Value]:
        if method == "astype":
            dtype = dtype_of_expr(
                node.args[0] if node.args else self._kwarg(node, "dtype"),
                self.aliases,
            )
            return Value(ARRAY, dtype, ordered=receiver.ordered,
                         explicit_dtype=True)
        if receiver.kind == ARRAY:
            if method in ("sum", "min", "max", "prod", "dot"):
                return Value(SCALAR, receiver.dtype)
            if method == "mean":
                return Value(SCALAR, FLOAT64)
            if method in ("copy", "ravel", "reshape", "clip"):
                return receiver
            if method == "tolist":
                return Value(LIST, receiver.dtype, ordered=receiver.ordered)
        if receiver.kind == SET and method in _SET_METHODS:
            return Value(SET)
        if receiver.kind == DICT:
            if method in ("items", "keys", "values"):
                return Value(DICT_VIEW)
            if method == "copy":
                return Value(DICT)
        if receiver.kind == DIGEST and method == "copy":
            return Value(DIGEST)
        return None

    @staticmethod
    def _kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _numpy_call(
        self, tail: str, node: ast.Call, arg_values: List[Value]
    ) -> Value:
        dtype_node = self._kwarg(node, "dtype")
        explicit = dtype_node is not None
        dtype = dtype_of_expr(dtype_node, self.aliases)
        if tail in _FLOAT64_DEFAULT_CTORS:
            return Value(ARRAY, dtype if explicit else FLOAT64,
                         explicit_dtype=explicit)
        if tail == "fromiter" and not explicit and len(node.args) >= 2:
            # np.fromiter(iterable, dtype) takes dtype positionally.
            dtype = dtype_of_expr(node.args[1], self.aliases)
            explicit = True
        if tail in _INFERRING_CTORS:
            if explicit:
                return Value(ARRAY, dtype, explicit_dtype=True)
            inferred = arg_values[0].dtype if arg_values else None
            if arg_values and arg_values[0].kind == ARRAY:
                return replace(arg_values[0], kind=ARRAY)
            return Value(ARRAY, inferred)
        if tail == "arange":
            if explicit:
                return Value(ARRAY, dtype, explicit_dtype=True)
            dtypes = [v.dtype for v in arg_values]
            if dtypes and all(d == INT for d in dtypes):
                return Value(ARRAY, INT)
            return Value(ARRAY, FLOAT64 if FLOAT64 in dtypes else None)
        if tail in ("concatenate", "stack", "hstack", "vstack"):
            return Value(ARRAY, explicit_dtype=explicit, dtype=dtype)
        if tail == "sort":
            inner = arg_values[0] if arg_values else UNKNOWN_VALUE
            return Value(ARRAY, inner.dtype, ordered=True)
        if tail in ("add.reduce", "sum", "prod", "minimum.reduce",
                    "maximum.reduce"):
            inner = arg_values[0] if arg_values else UNKNOWN_VALUE
            return Value(SCALAR, inner.dtype)
        if tail in ("float64", "double"):
            return Value(SCALAR, FLOAT64)
        if tail in ("float32", "single"):
            return Value(SCALAR, FLOAT32)
        if tail in ("int64", "int32", "intp"):
            return Value(SCALAR, INT)
        if tail in ("maximum", "minimum", "where", "clip", "abs", "rint"):
            dtypes = [v.dtype for v in arg_values if v.kind in (ARRAY, SCALAR)]
            out: Optional[str] = None
            for d in dtypes:
                out = d if out is None else promote(out, d)
            return Value(ARRAY, out)
        return UNKNOWN_VALUE


# -- CFG-lite path enumeration -----------------------------------------

#: One execution path: leaf statements in order.  Terminators (return,
#: raise, break, continue) appear as the final element of their path.
Path = List[ast.stmt]

#: Statements an ``atomic`` predicate may keep whole on a path.
AtomicPredicate = Callable[[ast.stmt], bool]

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _Enumerator:
    def __init__(
        self, limit: int, atomic: Optional[AtomicPredicate]
    ) -> None:
        self.limit = limit
        self.atomic = atomic
        self.truncated = False

    def block(
        self, body: Sequence[ast.stmt], prefixes: List[Path]
    ) -> Tuple[List[Path], List[Path]]:
        """Returns (all paths seen, the still-alive subset)."""
        alive = [list(p) for p in prefixes]
        finished: List[Path] = []
        for stmt in body:
            if not alive:
                break
            next_alive: List[Path] = []
            for path in alive:
                extended, still_alive = self.stmt(stmt, path)
                for sub, ok in zip(extended, still_alive):
                    if ok:
                        next_alive.append(sub)
                    else:
                        finished.append(sub)
                if len(next_alive) + len(finished) > self.limit:
                    self.truncated = True
                    next_alive = next_alive[
                        : max(0, self.limit - len(finished))
                    ]
                    break
            alive = next_alive
        return finished + alive, alive

    def stmt(
        self, stmt: ast.stmt, path: Path
    ) -> Tuple[List[Path], List[bool]]:
        if isinstance(stmt, _TERMINATORS):
            return [path + [stmt]], [False]
        if self.atomic is not None and self.atomic(stmt):
            return [path + [stmt]], [True]
        if isinstance(stmt, ast.If):
            then_paths, then_alive = self.block(stmt.body, [path])
            else_paths, else_alive = self.block(stmt.orelse, [path])
            paths = then_paths + else_paths
            alive_ids = {id(p) for p in (*then_alive, *else_alive)}
            return paths, [id(p) in alive_ids for p in paths]
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            once_paths, once_alive = self.block(stmt.body, [path])
            alive_ids = {id(p) for p in once_alive}
            paths = [list(path)] + once_paths
            flags = [True] + [
                # break/continue inside the loop ends the iteration,
                # not the function: those paths continue afterwards.
                id(p) in alive_ids or (bool(p) and isinstance(
                    p[-1], (ast.Break, ast.Continue)))
                for p in once_paths
            ]
            return paths, flags
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            paths, alive = self.block(stmt.body, [path])
            alive_ids = {id(p) for p in alive}
            return paths, [id(p) in alive_ids for p in paths]
        if isinstance(stmt, ast.Try):
            ok_paths, ok_alive = self.block(
                list(stmt.body) + list(stmt.orelse), [path]
            )
            all_paths = list(ok_paths)
            all_alive = list(ok_alive)
            for handler in stmt.handlers:
                h_paths, h_alive = self.block(handler.body, [path])
                all_paths.extend(h_paths)
                all_alive.extend(h_alive)
            alive_ids = {id(p) for p in all_alive}
            if stmt.finalbody:
                out_paths: List[Path] = []
                out_flags: List[bool] = []
                for p in all_paths:
                    was_alive = id(p) in alive_ids
                    f_paths, f_alive = self.block(stmt.finalbody, [p])
                    f_alive_ids = {id(fp) for fp in f_alive}
                    out_paths.extend(f_paths)
                    out_flags.extend(
                        (id(fp) in f_alive_ids) and was_alive
                        for fp in f_paths
                    )
                return out_paths, out_flags
            return all_paths, [id(p) in alive_ids for p in all_paths]
        return [path + [stmt]], [True]


def enumerate_paths(
    body: Sequence[ast.stmt],
    *,
    limit: int = 256,
    atomic: Optional[AtomicPredicate] = None,
) -> Tuple[List[Path], bool]:
    """(acyclic execution paths through ``body``, truncation flag).

    Branch semantics: ``if`` explores both arms (an absent ``else`` is
    an empty arm); loops contribute the zero-iteration and the
    one-iteration path; ``try`` explores the full body plus, per
    handler, the handler body (exception-at-entry approximation);
    ``with`` bodies run unconditionally.  Nested function definitions
    are opaque single statements — the accounting rule analyses them
    separately.  A statement matching ``atomic`` stays whole on the
    path (RL008 keeps pure store fan-out loops atomic so their
    zero-iteration artifact cannot split a settle event from its
    counter).  When the path count exceeds ``limit``, enumeration stops
    and the flag comes back ``True`` — callers must treat a truncated
    enumeration as "no proof", not "no findings".
    """
    walker = _Enumerator(limit, atomic)
    paths, _alive = walker.block(body, [[]])
    return paths, walker.truncated
