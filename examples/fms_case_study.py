"""Flight-management-system case study (the paper's Section VI-A).

Designs the HI-mode speedup for an avionics workload end to end:

1. start from the 7 HI + 4 LO FMS task set,
2. pick the overrun-preparation factor ``x`` (minimal LO-feasible),
3. explore the (speedup, degradation) design space,
4. check the chosen design against an Intel-Turbo-Boost-style power
   envelope (2x for at most 30 s),
5. stress-test with randomly overrunning jobs in simulation.

Run with:  python examples/fms_case_study.py
"""

import numpy as np

from repro.analysis.overrun import BoostEnvelope, max_overrun_frequency
from repro.analysis.resetting import resetting_time
from repro.analysis.speedup import min_speedup
from repro.analysis.tuning import min_preparation_factor
from repro.generator.fms import fms_taskset
from repro.model.transform import apply_uniform_scaling
from repro.sim.scheduler import SimConfig, simulate
from repro.sim.workload import OverrunModel, SporadicSource


def main() -> None:
    gamma = 2.0  # HI WCETs are twice the LO estimates
    base = fms_taskset(gamma)
    print(f"FMS workload (gamma = {gamma:g}):")
    print(base.table())

    x = min_preparation_factor(base, method="exact")
    print(f"\nMinimal LO-feasible preparation factor x = {x:.3f}")

    # ------------------------------------------------------------------
    # Design space: how much speedup does each degradation level need,
    # and how fast does the system recover?
    # ------------------------------------------------------------------
    print(f"\n{'y':>6} {'s_min':>8} {'Delta_R(s=2) [ms]':>18}")
    for y in (1.0, 1.5, 2.0, 3.0):
        configured = apply_uniform_scaling(base, x, y)
        s_min = min_speedup(configured).s_min
        reset = resetting_time(configured, 2.0).delta_r
        print(f"{y:>6g} {s_min:>8.3f} {reset:>18.1f}")

    # Pick y = 2 (mild degradation), s = 2 (Turbo-Boost-compatible).
    design = apply_uniform_scaling(base, x, 2.0)
    reset = resetting_time(design, 2.0)
    print(f"\nChosen design: x = {x:.3f}, y = 2, s = 2")
    print(f"  worst-case recovery: {reset.delta_r:.0f} ms"
          f"  (paper headline: < 3000 ms)")

    # ------------------------------------------------------------------
    # Power/thermal feasibility (Section I: boost budgets are bounded).
    # ------------------------------------------------------------------
    envelope = BoostEnvelope(max_speedup=2.0, max_duration=30_000.0)  # ms
    ok = envelope.admits(s=2.0, delta_r=reset.delta_r)
    print(f"  fits 2x/30s Turbo-Boost envelope: {ok}")
    burst_gap = 60_000.0  # overrun bursts at least a minute apart
    freq = max_overrun_frequency(reset.delta_r, burst_gap)
    print(f"  boost episodes at most every {1 / freq / 1000:.0f} s")

    # ------------------------------------------------------------------
    # Stress test: sporadic arrivals, 20% of HI jobs overrun fully.
    # ------------------------------------------------------------------
    source = SporadicSource(
        np.random.default_rng(42),
        mean_slack_factor=0.1,
        overrun=OverrunModel(probability=0.2, rng=np.random.default_rng(7)),
    )
    result = simulate(design, SimConfig(speedup=2.0, horizon=120_000.0), source)
    closed = [e.length for e in result.episodes if e.end is not None]
    print(f"\nSimulated 120 s of sporadic operation:")
    print(f"  jobs released:        {len(result.jobs)}")
    print(f"  deadline misses:      {result.miss_count}")
    print(f"  mode switches:        {result.mode_switch_count}")
    if closed:
        print(f"  longest episode:      {max(closed):.0f} ms"
              f"  (bound {reset.delta_r:.0f} ms)")
    print(f"  time overclocked:     {result.boosted_time:.0f} ms"
          f" ({100 * result.boosted_time / 120_000:.2f}% of the horizon)")

    assert result.miss_count == 0
    if closed:
        assert max(closed) <= reset.delta_r + 1e-6
    print("\nDesign validated: no misses, recovery within the offline bound.")


if __name__ == "__main__":
    main()
