"""Consolidating mixed-criticality functions onto few cores (SWaP).

The paper's Section-I motivation: integrate functions of different
criticalities onto a shared platform to save size, weight and power.
This example consolidates three subsystems (flight management, a sensor
pipeline, cabin functions) onto the fewest cores such that every core
runs the temporary-speedup protocol within a 2x boost cap.

Run with:  python examples/consolidation_multicore.py
"""

from repro.generator.fms import fms_taskset
from repro.model.task import MCTask
from repro.model.taskset import TaskSet
from repro.model.transform import apply_uniform_scaling
from repro.multiproc.partition import min_cores, partitioned_design


def sensor_pipeline() -> TaskSet:
    """A camera/radar fusion pipeline: tight periods, high criticality."""
    return TaskSet(
        [
            MCTask.hi("radar_fe", c_lo=8, c_hi=20, d_lo=50, d_hi=50, period=50),
            MCTask.hi("fusion", c_lo=15, c_hi=30, d_lo=100, d_hi=100, period=100),
            MCTask.hi("tracker", c_lo=20, c_hi=35, d_lo=200, d_hi=200, period=200),
            MCTask.lo("raw_log", c=30, d_lo=500, t_lo=500),
        ],
        name="sensors",
    )


def cabin_functions() -> TaskSet:
    """Best-effort cabin/comfort functions: LO criticality only."""
    return TaskSet(
        [
            MCTask.lo("hvac", c=40, d_lo=1000, t_lo=1000),
            MCTask.lo("lighting", c=10, d_lo=500, t_lo=500),
            MCTask.lo("infotainment", c=120, d_lo=2000, t_lo=2000),
        ],
        name="cabin",
    )


def main() -> None:
    subsystems = [fms_taskset(2.0), sensor_pipeline(), cabin_functions()]
    merged = TaskSet(
        [t for ts in subsystems for t in ts], name="consolidated"
    )
    print(f"Consolidated workload: {len(merged)} tasks, "
          f"U_LO = {merged.u_lo_system:.2f}, U_HI = {merged.u_hi_system:.2f}")

    # The merged load exceeds one processor (U_LO > 1), so the uniform
    # preparation factor cannot come from a single-core feasibility test;
    # pick a platform-wide design value and let the per-core admission
    # test enforce feasibility core by core.  (Per-core x re-tuning after
    # partitioning is the refinement, cf. min_preparation_factor.)
    x = 0.5
    prepared = apply_uniform_scaling(merged, x, 2.0)
    print(f"Preparation x = {x:.3f} (platform-wide), degradation y = 2\n")

    for heuristic in ("first_fit", "worst_fit"):
        n = min_cores(prepared, speedup_cap=2.0, heuristic=heuristic)
        design = partitioned_design(
            prepared, n, speedup_cap=2.0, heuristic=heuristic
        )
        print(f"{heuristic}: {n} core(s); worst per-core s_min = "
              f"{design.max_s_min:.3f}, slowest recovery = "
              f"{design.max_delta_r:.0f} ms")
        print(design.table())
        print()

    design = partitioned_design(prepared, 2, speedup_cap=2.0, heuristic="worst_fit")
    assignment = design.assignment()
    by_core = {}
    for name, core in assignment.items():
        by_core.setdefault(core, []).append(name)
    for core, names in sorted(by_core.items()):
        print(f"core {core}: {', '.join(sorted(names))}")


if __name__ == "__main__":
    main()
