"""Picking a real operating point: frequency ladders and energy.

The analysis yields a continuous minimum speedup; a deployable design
must round it onto the platform's P-state ladder and budget the energy
of each boost episode. This example walks the full decision for the FMS
workload:

1. exact requirement (Theorem 2) for a few degradation levels,
2. fit onto a Turbo-Boost-style ladder (round up, re-evaluate recovery),
3. energy per episode and the energy-optimal recovery speed,
4. compare fixed-priority AMC as the no-speedup alternative.

Run with:  python examples/dvfs_energy_design.py
"""

from repro.analysis.dvfs import TURBO_LADDER, discrete_design
from repro.analysis.tuning import min_preparation_factor
from repro.baselines.amc import amc_schedulable
from repro.energy import EnergyModel, episode_energy, optimal_recovery_speed
from repro.generator.fms import fms_taskset
from repro.model.transform import apply_uniform_scaling


def main() -> None:
    # gamma = 3.3: heavy WCET uncertainty; the density-based x keeps the
    # example in the regime where boosting is actually required.
    base = fms_taskset(gamma=3.3)
    x = min_preparation_factor(base, method="density")
    print(f"FMS workload, x = {x:.3f}, ladder = {TURBO_LADDER.levels}\n")

    print(f"{'y':>5} {'s_min':>8} {'P-state':>8} {'Delta_R [ms]':>13} "
          f"{'E/episode':>10}")
    model = EnergyModel(alpha=3.0)
    designs = {}
    for y in (1.0, 1.5, 2.0, 3.0):
        configured = apply_uniform_scaling(base, x, y)
        design = discrete_design(configured, TURBO_LADDER)
        designs[y] = (configured, design)
        if not design.deployable:
            print(f"{y:>5g} {design.s_min.s_min:>8.3f} {'—':>8} "
                  f"{'undeployable':>13}")
            continue
        energy = episode_energy(configured, design.level, model)
        print(f"{y:>5g} {design.s_min.s_min:>8.3f} {design.level:>8g} "
              f"{design.resetting.delta_r:>13.0f} {energy:>10.0f}")

    # ------------------------------------------------------------------
    # Energy-optimal recovery speed for the y = 2 design: boosting
    # harder shortens the episode but burns power cubically.
    # ------------------------------------------------------------------
    configured, design = designs[2.0]
    s_star, e_star = optimal_recovery_speed(
        configured, model, s_max=TURBO_LADDER.max_speedup,
        s_min_hint=design.s_min.s_min,
    )
    level = TURBO_LADDER.at_least(s_star)
    print(f"\nEnergy-optimal recovery speed (y = 2): s* = {s_star:.3f} "
          f"(episode energy {e_star:.0f}); nearest P-state: {level:g}")
    for s in (lvl for lvl in TURBO_LADDER.levels if lvl >= design.s_min.s_min):
        print(f"  P-state {s:>5g}: episode energy "
              f"{episode_energy(configured, s, model):.0f}")

    # ------------------------------------------------------------------
    # The fixed-priority alternative: AMC terminates LO tasks instead of
    # boosting. Same guarantee class as EDF-VD, no extra energy — and no
    # LO service during overruns.
    # ------------------------------------------------------------------
    amc = amc_schedulable(base)
    print(f"\nFixed-priority AMC (terminate, never boost): "
          f"schedulable = {amc.schedulable}")
    if amc.schedulable:
        print("  -> the FMS *can* run without speedup if losing all LO "
              "service during overruns is acceptable;")
        print("     temporary speedup keeps the degraded LO service alive "
              "at a bounded, budgeted energy cost.")


if __name__ == "__main__":
    main()
