"""Quickstart: analyse and simulate a small mixed-criticality system.

Walks through the full public API on the paper's running example
(Table I, reconstructed):

1. model a dual-criticality task set,
2. compute the minimum HI-mode speedup (Theorem 2),
3. compute the service resetting time (Corollary 5),
4. simulate the worst case and check the bounds hold.

Run with:  python examples/quickstart.py
"""

from repro import MCTask, TaskSet, analyze
from repro.api import lo_mode_schedulable
from repro.sim.scheduler import SimConfig, simulate
from repro.sim.workload import OverrunModel, SynchronousWorstCaseSource


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Model: one HI task that may overrun, one LO task.
    #    tau1's LO-mode deadline is shortened (1 < 4) to prepare for
    #    overrun; tau2 keeps its full service in HI mode.
    # ------------------------------------------------------------------
    tau1 = MCTask.hi("tau1", c_lo=1, c_hi=3, d_lo=1, d_hi=4, period=4)
    tau2 = MCTask.lo("tau2", c=2, d_lo=4, t_lo=4)
    system = TaskSet([tau1, tau2], name="quickstart")
    print(system.table())

    # ------------------------------------------------------------------
    # 2. Offline analysis.
    # ------------------------------------------------------------------
    print(f"\nLO mode schedulable at nominal speed: {lo_mode_schedulable(system)}")

    # One facade call bundles Theorem 2, Corollary 5 and both verdicts.
    report = analyze(system, speedup=2.0, resetting="always")
    print(f"Theorem 2 minimum HI-mode speedup:    {report.s_min:.4f}")
    print(f"  (critical interval Delta = {report.speedup.critical_delta:g})")
    print(f"Corollary 5 resetting time at s = 2:  {report.delta_r:.4f}")
    print(f"Dual-mode schedulable at s = 2:       {report.lo_ok and report.hi_ok}")

    # ------------------------------------------------------------------
    # 3. Simulate the adversarial case: synchronous release, first HI
    #    job overruns to its HI WCET.
    # ------------------------------------------------------------------
    source = SynchronousWorstCaseSource(OverrunModel(first_job_overruns=True))
    result = simulate(system, SimConfig(speedup=2.0, horizon=40.0), source)

    print(f"\nSimulated 40 time units at 2x HI-mode speed:")
    print(f"  deadline misses:   {result.miss_count}")
    print(f"  HI-mode episodes:  {result.mode_switch_count}")
    print(f"  longest episode:   {result.max_episode_length:.3f}"
          f"  (bound: {report.delta_r:.3f})")
    print(f"  boosted time:      {result.boosted_time:.3f}")
    print()
    print(result.trace.gantt(width=72, end=24.0))

    assert result.miss_count == 0
    assert result.max_episode_length <= report.delta_r + 1e-9
    print("\nAll offline bounds verified by simulation.")


if __name__ == "__main__":
    main()
