"""Watch an overrun, the speedup, and the recovery — slice by slice.

Runs the Table-I example at several HI-mode speeds under the adversarial
workload and renders the schedule as ASCII Gantt charts, illustrating
the paper's core trade-off: faster processors clear the backlog sooner
(shorter HI-mode episode) at a higher instantaneous energy cost.

Run with:  python examples/overrun_recovery_sim.py
"""

from repro.analysis.resetting import resetting_time
from repro.analysis.speedup import min_speedup
from repro.experiments.table1 import table1_taskset
from repro.sim.scheduler import SimConfig, simulate
from repro.sim.workload import OverrunModel, SynchronousWorstCaseSource


def main() -> None:
    system = table1_taskset()
    s_min = min_speedup(system).s_min
    print(f"Task set (s_min = {s_min:.4f}):")
    print(system.table())
    print()

    source = SynchronousWorstCaseSource(OverrunModel(first_job_overruns=True))
    rows = []
    for s in (1.5, 2.0, 3.0):
        bound = resetting_time(system, s).delta_r
        result = simulate(
            system,
            SimConfig(speedup=s, horizon=60.0, stop_after_first_reset=True),
            SynchronousWorstCaseSource(OverrunModel(first_job_overruns=True)),
        )
        episode = result.episodes[0]
        rows.append((s, episode.length, bound, result.energy, result.miss_count))
        print(f"--- s = {s:g}: overrun at t = {episode.start:g}, "
              f"recovered after {episode.length:.3f} (bound {bound:.3f})")
        print(result.trace.gantt(width=72))
        print()

    print(f"{'s':>5} {'episode':>9} {'Delta_R':>9} {'energy':>9} {'misses':>7}")
    for s, length, bound, energy, misses in rows:
        print(f"{s:>5g} {length:>9.3f} {bound:>9.3f} {energy:>9.1f} {misses:>7d}")

    print(
        "\nHigher speed shortens the recovery (and the offline bound tracks "
        "it); the energy column shows the cubic-power cost of the boost."
    )


if __name__ == "__main__":
    main()
