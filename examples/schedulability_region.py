"""How much schedulability does temporary speedup buy? (Figure-7 style)

Sweeps a small (U_HI, U_LO) grid of random task sets with LO-task
termination and compares three designs:

* classic EDF-VD on a unit-speed processor (the prior state of the art),
* this paper's analysis at s = 1 (exact dbf test, still no speedup),
* temporary 2x speedup with a 5 s recovery budget.

Run with:  python examples/schedulability_region.py  (about a minute)
"""

import math

import numpy as np

from repro.baselines.edf_vd import edf_vd_schedulable
from repro.experiments.fig7 import accept
from repro.generator.taskgen import FIG7_CONFIG, generate_taskset_with_targets


def main() -> None:
    points = (0.2, 0.5, 0.8)
    sets_per_point = 15
    print("Fraction of schedulable task sets (gamma = 10, LO terminated):\n")
    header = f"{'U_HI':>6} {'U_LO':>6} {'EDF-VD':>8} {'s=1':>8} {'2x/5s':>8}"
    print(header)
    print("-" * len(header))

    gain_cells = 0
    for u_hi in points:
        for u_lo in points:
            rng = np.random.default_rng(hash((u_hi, u_lo)) % 2**32)
            vd = exact1 = boosted = 0
            for k in range(sets_per_point):
                ts = generate_taskset_with_targets(
                    u_hi, u_lo, rng, FIG7_CONFIG, jitter=0.025, name=f"s{k}"
                )
                if edf_vd_schedulable(ts).schedulable:
                    vd += 1
                if accept(ts, 1.0, math.inf):
                    exact1 += 1
                if accept(ts, 2.0, 5000.0):
                    boosted += 1
            print(
                f"{u_hi:>6.2f} {u_lo:>6.2f} {vd / sets_per_point:>8.2f} "
                f"{exact1 / sets_per_point:>8.2f} {boosted / sets_per_point:>8.2f}"
            )
            if boosted > vd:
                gain_cells += 1

    print(
        f"\nTemporary 2x speedup beats classic EDF-VD in {gain_cells} of "
        f"{len(points) ** 2} grid cells."
    )


if __name__ == "__main__":
    main()
