"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs PEP-660 wheel building; on fully offline
machines lacking ``wheel``, ``python setup.py develop`` provides the
equivalent editable install through this shim.
"""

from setuptools import setup

setup()
